"""Parallel sharded repair executor (scaling lRepair across cores).

The paper's efficiency result (Fig. 7) is that ``lRepair`` fixes each
tuple in ``O(size(Σ))`` *independently of every other tuple* — repairs
are embarrassingly parallel across rows.  This module exploits that:

* :class:`BatchRepairKernel` — a positional, allocation-light
  re-formulation of ``lRepair`` over raw value lists.  It produces the
  exact same chase as :func:`~repro.core.repair.fast_repair` (the
  frontier is seeded and drained in the same order), but skips the
  per-row ``Row``/counter-array/``RepairResult`` construction, which
  dominates the per-tuple cost for realistic rule sets.  Rows that no
  rule can touch — the overwhelming majority in practice — cost two
  dict probes per cell and allocate nothing.
* :func:`plan_chunks` — deterministic shard boundaries.  Chunking
  never affects output content (each row's fix is independent and
  unique for a consistent Σ); it only sets the unit of work shipped to
  a worker and the granularity at which the streaming path may commit
  a checkpoint.
* :class:`ParallelRepairExecutor` — a ``fork`` process pool whose
  initializer broadcasts the pickled ``(schema, rules)`` pair **once
  per worker** (not per task) and rebuilds the inverted-list index
  there; tasks then carry only raw cell values.  Results are merged
  back in submission order with a bounded in-flight window, so memory
  stays proportional to ``workers × chunk_size``, not the input.
* :func:`parallel_repair_table` — the table-level driver behind
  ``repair_table(..., workers=N)``; returns the same
  :class:`~repro.core.repair.TableRepairReport` (full provenance,
  identical counters) as the serial path.

Equivalence is not an accident to hope for but a theorem to test:
for a consistent Σ every proper-application order yields the unique
fix (Church–Rosser, Section 4), and ``tests/test_differential_repair.py``
checks cRepair ≡ lRepair ≡ parallel cell-for-cell on randomized
instances.

Serial fallback: ``workers <= 1``, an empty table, or a platform
without the ``fork`` start method (the broadcast-by-initializer model
is only cheap there) all degrade to the plain serial path with
identical results.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections import deque
from typing import (Dict, FrozenSet, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from ..errors import InconsistentRulesError, PipelineError
from ..relational import Row, Schema, Table
from .indexes import InvertedIndex
from .repair import (AppliedFix, RepairResult, RuleInput, TableRepairReport,
                     _as_rule_list)
from .rule import FixingRule

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "fork_available",
    "default_workers",
    "plan_chunks",
    "BatchRepairKernel",
    "ParallelRepairExecutor",
    "parallel_repair_table",
]

#: Default rows per shard for the streaming path.  Large enough that
#: pickling amortizes, small enough that checkpoints stay frequent.
DEFAULT_CHUNK_SIZE = 1024

#: First element of a worker-side per-row error marker (see
#: :func:`_repair_chunk_task`).
_ERROR_MARK = "__row_error__"


def fork_available() -> bool:
    """Can this platform start workers with ``fork``?

    The executor relies on cheap process startup plus a one-shot
    initializer broadcast; without ``fork`` (e.g. Windows) the serial
    path is used instead.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Worker count used when ``workers`` is passed as ``None``."""
    return os.cpu_count() or 1


def plan_chunks(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Deterministic shard boundaries: ``[start, stop)`` pairs covering
    ``range(total)`` in order.

    The plan is a pure function of ``(total, chunk_size)``, so a
    resumed run shards the remaining rows the same way every time —
    and because tuple repairs are independent, the merged output is
    identical under *any* plan; determinism here is about predictable
    scheduling and checkpoint cadence, not output content.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1, got %d" % chunk_size)
    if total < 0:
        raise ValueError("total must be >= 0, got %d" % total)
    return [(start, min(start + chunk_size, total))
            for start in range(0, total, chunk_size)]


class BatchRepairKernel:
    """``lRepair`` over raw value lists, tuned for batch throughput.

    Built once per (schema, Σ) pair — in each pool worker by the
    executor's initializer, or directly for in-process use.  All rule
    state is pre-resolved to schema *positions*:

    * ``_lists_by_pos[p]`` maps a cell value at position ``p`` to the
      ids of rules whose evidence pattern constrains that attribute to
      that value (the inverted lists of Section 6.2, re-keyed
      positionally);
    * evidence counters live in a per-row dict keyed by rule id, so a
      row only pays for the rules its cells actually hit — unlike the
      dense counter array of :class:`~repro.core.indexes.HashCounters`,
      which is reset and scanned per row.

    The chase itself follows Fig. 7 line by line, seeding and draining
    the frontier Γ in exactly the order :func:`fast_repair` does, so
    the two produce identical results even on an (erroneously)
    inconsistent Σ, where order matters.
    """

    __slots__ = ("schema", "rules", "_nattrs", "_lists_by_pos", "_ev_size",
                 "_b_pos", "_negatives", "_fact", "_touched", "_ev_pos",
                 "_touched_pos")

    def __init__(self, schema: Schema, rules: RuleInput,
                 index: Optional[InvertedIndex] = None):
        rule_list = _as_rule_list(rules)
        for rule in rule_list:
            rule.validate(schema)
        if index is None:
            index = InvertedIndex(rule_list)
        self.schema = schema
        self.rules: Tuple[FixingRule, ...] = tuple(rule_list)
        self._nattrs = len(schema)
        lists: List[Dict[str, Tuple[int, ...]]] = [
            {} for _ in range(self._nattrs)]
        for attr, value in index.keys():
            lists[schema.index_of(attr)][value] = tuple(
                index.lookup(attr, value))
        self._lists_by_pos = lists
        self._ev_size: Tuple[int, ...] = tuple(
            len(rule.evidence) for rule in rule_list)
        self._b_pos: Tuple[int, ...] = tuple(
            schema.index_of(rule.attribute) for rule in rule_list)
        self._negatives: Tuple[FrozenSet[str], ...] = tuple(
            rule.negatives for rule in rule_list)
        self._fact: Tuple[str, ...] = tuple(
            rule.fact for rule in rule_list)
        self._touched: Tuple[FrozenSet[str], ...] = tuple(
            rule.touched_attrs for rule in rule_list)
        self._ev_pos: Tuple[Tuple[Tuple[int, str], ...], ...] = tuple(
            tuple((schema.index_of(attr), value)
                  for attr, value in rule._evidence_items)
            for rule in rule_list)
        self._touched_pos: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(schema.index_of(attr) for attr in rule.touched_attrs)
            for rule in rule_list)

    def repair_values(self, values: Sequence[str]
                      ) -> Optional[Tuple[List[str],
                                          List[Tuple[int, str]]]]:
        """Repair one tuple given as cell values in schema order.

        Returns ``None`` when no rule fires (the common case — the
        input is not copied), otherwise ``(new_values, applied)`` where
        *applied* lists ``(rule_id, old_value)`` pairs in application
        order.  The input sequence is never mutated.
        """
        lists_by_pos = self._lists_by_pos
        ev_size = self._ev_size
        counts: Dict[int, int] = {}
        frontier: Optional[List[int]] = None
        for pos in range(self._nattrs):
            hits = lists_by_pos[pos].get(values[pos])
            if hits:
                for rule_id in hits:
                    count = counts.get(rule_id, 0) + 1
                    counts[rule_id] = count
                    if count == ev_size[rule_id]:
                        if frontier is None:
                            frontier = [rule_id]
                        else:
                            frontier.append(rule_id)
        if frontier is None:
            return None
        # fast_repair seeds Γ in ascending rule-id order (the dense
        # counter scan of HashCounters.reset_for); match it exactly so
        # the chase order — hence the result, even on inconsistent Σ —
        # is identical.
        frontier.sort()

        current: List[str] = list(values)
        applied: List[Tuple[int, str]] = []
        assured_positions: set = set()
        in_frontier = set(frontier)
        checked: set = set()
        b_pos = self._b_pos
        negatives = self._negatives
        facts = self._fact
        while frontier:
            rule_id = frontier.pop()
            in_frontier.discard(rule_id)
            checked.add(rule_id)
            target = b_pos[rule_id]
            old = current[target]
            if target in assured_positions or old not in negatives[rule_id]:
                continue  # removed once and for all (Fig. 7, line 16)
            # Evidence re-check: the counter says the pattern matched
            # at completion time, but a later application may have
            # rewritten an evidence cell — properly_applicable() in the
            # serial path re-reads the tuple, and so must we.
            ok = True
            for pos, value in self._ev_pos[rule_id]:
                if current[pos] != value:
                    ok = False
                    break
            if not ok:
                continue
            fact = facts[rule_id]
            current[target] = fact
            assured_positions.update(self._touched_pos[rule_id])
            applied.append((rule_id, old))
            hit_lists = lists_by_pos[target]
            hits = hit_lists.get(old)
            if hits:
                for other in hits:
                    counts[other] = counts.get(other, 0) - 1
            hits = hit_lists.get(fact)
            if hits:
                for other in hits:
                    count = counts.get(other, 0) + 1
                    counts[other] = count
                    if (count == ev_size[other] and other not in checked
                            and other not in in_frontier):
                        frontier.append(other)
                        in_frontier.add(other)
        if not applied:
            return None
        return current, applied

    def repair_row(self, row: Row) -> RepairResult:
        """Adapter producing the classic :class:`RepairResult` for one
        :class:`~repro.relational.row.Row` (used by tests and by the
        serial in-process fallback)."""
        outcome = self.repair_values(row.values)
        if outcome is None:
            return RepairResult(row.copy(), (), frozenset())
        new_values, applied = outcome
        return RepairResult(Row(self.schema, new_values),
                            self.expand_applied(applied),
                            self.assured_for(applied))

    def expand_applied(self, applied: Sequence[Tuple[int, str]]
                       ) -> Tuple[AppliedFix, ...]:
        """Rehydrate compact ``(rule_id, old)`` pairs into
        :class:`AppliedFix` provenance records."""
        fixes = []
        for rule_id, old in applied:
            rule = self.rules[rule_id]
            fixes.append(AppliedFix(rule, rule.attribute, old, rule.fact))
        return tuple(fixes)

    def assured_for(self, applied: Sequence[Tuple[int, str]]
                    ) -> FrozenSet[str]:
        """The assured-attribute set implied by an application log."""
        assured: set = set()
        for rule_id, _old in applied:
            assured.update(self._touched[rule_id])
        return frozenset(assured)

    def __repr__(self) -> str:
        return ("BatchRepairKernel(%d rules over %s)"
                % (len(self.rules), self.schema.name))


# -- worker-side plumbing ----------------------------------------------------
#
# Each pool worker holds exactly one kernel, installed by the
# initializer from a pickled (schema, rules) blob shipped once at pool
# startup.  Tasks then carry only (chunk_id, [row values...]) and
# return (chunk_id, [encoded outcome...]).

_WORKER_KERNEL: Optional[BatchRepairKernel] = None


def _reap_with_parent() -> None:
    """Arrange for this worker to die when its parent does.

    Pool workers block on the task pipe; a SIGKILL to the parent would
    otherwise orphan them there forever (the daemon flag only covers
    clean interpreter exits).  Linux offers PR_SET_PDEATHSIG; elsewhere
    this is a silent no-op and hard parent kills may leak idle workers.
    """
    try:
        import ctypes
        import signal as _signal
        libc = ctypes.CDLL(None, use_errno=True)
        PR_SET_PDEATHSIG = 1
        libc.prctl(PR_SET_PDEATHSIG, _signal.SIGTERM)
        if os.getppid() == 1:  # parent already gone before prctl took
            os._exit(1)
    except Exception:  # pragma: no cover - non-Linux libc
        pass


def _init_worker(blob: bytes) -> None:
    global _WORKER_KERNEL
    _reap_with_parent()
    schema, rules = pickle.loads(blob)
    _WORKER_KERNEL = BatchRepairKernel(schema, rules)


def _repair_chunk_task(task):
    chunk_id, rows = task
    kernel = _WORKER_KERNEL
    if kernel is None:  # pragma: no cover - initializer always runs
        raise RuntimeError("worker used before initialization")
    out = []
    for values in rows:
        try:
            out.append(kernel.repair_values(values))
        except Exception as exc:  # per-row capture: the error policy
            out.append((_ERROR_MARK, type(exc).__name__, str(exc)))
    return chunk_id, out


def is_error_marker(encoded) -> bool:
    """Did this per-row outcome record a worker-side exception?"""
    return (isinstance(encoded, tuple) and len(encoded) == 3
            and encoded[0] == _ERROR_MARK)


class ParallelRepairExecutor:
    """A ``fork`` pool that shards repair work and merges it in order.

    Parameters
    ----------
    schema, rules:
        Broadcast once per worker via the pool initializer; each worker
        rebuilds its :class:`BatchRepairKernel` (inverted lists and
        all) exactly once, so per-task payloads are raw cell values
        only.
    workers:
        Pool size; must be >= 2 (use the serial path below that).

    Use as a context manager; the pool is terminated on exit even when
    the consuming loop raises (e.g. a
    :class:`~repro.core.pipeline.FaultInjected` kill).
    """

    def __init__(self, schema: Schema, rules: RuleInput, workers: int):
        if workers < 2:
            raise ValueError("ParallelRepairExecutor needs workers >= 2, "
                             "got %d (use the serial path)" % workers)
        rule_list = tuple(_as_rule_list(rules))
        blob = pickle.dumps((schema, rule_list),
                            protocol=pickle.HIGHEST_PROTOCOL)
        context = (multiprocessing.get_context("fork") if fork_available()
                   else multiprocessing.get_context())
        self.workers = workers
        self._pool = context.Pool(processes=workers,
                                  initializer=_init_worker,
                                  initargs=(blob,))
        self._closed = False

    def map_chunks(self, chunks: Iterable[Sequence[Sequence[str]]],
                   max_inflight: Optional[int] = None) -> Iterator[list]:
        """Repair *chunks* (each a list of row value lists), yielding
        per-chunk outcome lists **in submission order**.

        At most ``max_inflight`` (default ``2 × workers``) chunks are
        outstanding at once, bounding memory for unbounded inputs.
        Exceptions raised by the *chunks* iterable itself propagate to
        the caller between submissions — the streaming path relies on
        this for fault-injection kills.
        """
        if max_inflight is None:
            max_inflight = 2 * self.workers
        pending: deque = deque()
        chunk_id = 0
        for chunk in chunks:
            pending.append(self._pool.apply_async(
                _repair_chunk_task, ((chunk_id, list(chunk)),)))
            chunk_id += 1
            if len(pending) >= max_inflight:
                _cid, outcomes = pending.popleft().get()
                yield outcomes
        while pending:
            _cid, outcomes = pending.popleft().get()
            yield outcomes

    def close(self) -> None:
        if not self._closed:
            self._pool.terminate()
            self._pool.join()
            self._closed = True

    def __enter__(self) -> "ParallelRepairExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return "ParallelRepairExecutor(%d workers)" % self.workers


def parallel_repair_table(table: Table, rules: RuleInput,
                          workers: Optional[int] = None,
                          chunk_size: Optional[int] = None,
                          check_consistency: bool = False
                          ) -> TableRepairReport:
    """Repair *table* by sharding rows across a worker pool.

    The result — repaired cells, per-row provenance, assured sets,
    aggregate counters — is identical to
    ``repair_table(table, rules)``; only the wall-clock changes.  Falls
    back to the serial driver when ``workers <= 1``, the table is
    empty, or the platform lacks ``fork``.

    A worker-side exception while repairing a row (not possible for
    well-formed rules, but defended against) is re-raised here as
    :class:`~repro.errors.PipelineError` carrying the original type
    name and row provenance — the table driver has no error policy to
    absorb it, matching the serial path's fail-fast behavior.
    """
    from .repair import repair_table  # local: repair imports us lazily

    rule_list = _as_rule_list(rules)
    if check_consistency:
        from .consistency import find_conflicts
        conflicts = find_conflicts(rule_list, first_only=True)
        if conflicts:
            raise InconsistentRulesError(
                "rule set is inconsistent: %s" % conflicts[0].describe(),
                conflicts)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(table) == 0 or not fork_available():
        return repair_table(table, rule_list, algorithm="fast")
    if chunk_size is None:
        # Aim for a few chunks per worker so stragglers even out.
        chunk_size = max(1, -(-len(table) // (workers * 4)))

    schema = table.schema
    plan = plan_chunks(len(table), chunk_size)
    # Ship the raw cell lists; pickling copies them, so sharing the
    # internal list (rather than rebuilding one per row) is safe.
    source_rows = table._rows
    chunks = ([source_rows[i]._cells for i in range(start, stop)]
              for start, stop in plan)

    # The merge loop runs once per input row while the workers repair
    # ahead of it, so per-row constant costs here directly cap the
    # speedup: trusted constructors, shared empty provenance, and a
    # bulk-adopted result table keep it lean.
    from_trusted = Row.from_trusted
    empty_applied: Tuple = ()
    empty_assured: FrozenSet[str] = frozenset()
    merged_rows: List[Row] = []
    results: List[RepairResult] = []
    with ParallelRepairExecutor(schema, rule_list, workers) as executor:
        kernel_view = BatchRepairKernel(schema, rule_list)
        for (start, _stop), outcomes in zip(plan,
                                            executor.map_chunks(chunks)):
            for offset, encoded in enumerate(outcomes):
                if encoded is None:
                    row = from_trusted(
                        schema, list(source_rows[start + offset]._cells))
                    result = RepairResult(row, empty_applied,
                                          empty_assured)
                elif is_error_marker(encoded):
                    _mark, error_type, message = encoded
                    raise PipelineError(
                        "row %d failed in a repair worker: %s: %s"
                        % (start + offset, error_type, message))
                else:
                    new_values, applied = encoded
                    result = RepairResult(
                        from_trusted(schema, list(new_values)),
                        kernel_view.expand_applied(applied),
                        kernel_view.assured_for(applied))
                results.append(result)
                merged_rows.append(result.row)
    return TableRepairReport(Table.from_trusted_rows(schema, merged_rows),
                             results)
