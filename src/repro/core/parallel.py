"""Parallel sharded repair executor (scaling lRepair across cores).

The paper's efficiency result (Fig. 7) is that ``lRepair`` fixes each
tuple in ``O(size(Σ))`` *independently of every other tuple* — repairs
are embarrassingly parallel across rows.  This module exploits that:

* :class:`BatchRepairKernel` — historically the positional,
  allocation-light re-formulation of ``lRepair`` that made batch
  repair ~9x faster than the per-row path; that formulation was
  promoted to :class:`repro.core.engine.CompiledRuleSet` and now
  powers *every* driver (``fast_repair``, serial ``repair_table``,
  streaming, and these workers).  The kernel remains as a thin
  compatibility subclass.
* :func:`plan_chunks` — deterministic shard boundaries.  Chunking
  never affects output content (each row's fix is independent and
  unique for a consistent Σ); it only sets the unit of work shipped to
  a worker and the granularity at which the streaming path may commit
  a checkpoint.
* :class:`ParallelRepairExecutor` — a ``fork`` process pool whose
  initializer broadcasts one pickled blob — ``(schema, rules)`` plus
  Σ's content fingerprint, the parent's consistency verdict, and an
  optional worker-side fault plan — **once per worker** (not per
  task) and compiles the rule engine there; tasks then carry only raw
  cell values.  Seeding the verdict means a rule set checked in the
  parent is *never* re-checked in a worker: the consistency scan
  provably runs once per Σ.  Results are merged back in submission
  order with a bounded in-flight window, so memory stays proportional
  to ``workers × chunk_size``, not the input.

  Since the supervised-execution PR the executor's ``map_chunks`` runs
  under a :class:`~repro.core.supervisor.ChunkSupervisor`: per-chunk
  deadlines, dead/hung-worker detection, bounded retries with
  exponential backoff, poison-chunk bisection, and graceful
  degradation to in-process serial execution — see
  :mod:`repro.core.supervisor` for the failure model.
* :func:`parallel_repair_table` — the table-level driver behind
  ``repair_table(..., workers=N)``; returns the same
  :class:`~repro.core.repair.TableRepairReport` (full provenance,
  identical counters) as the serial path.

Equivalence is not an accident to hope for but a theorem to test:
for a consistent Σ every proper-application order yields the unique
fix (Church–Rosser, Section 4), and ``tests/test_differential_repair.py``
checks cRepair ≡ lRepair ≡ parallel cell-for-cell on randomized
instances.

Serial fallback: ``workers <= 1``, an empty table, or a platform
without the ``fork`` start method (the broadcast-by-initializer model
is only cheap there) all degrade to the plain serial path with
identical results.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from collections import deque
from typing import (Dict, FrozenSet, Iterable, Iterator, List, NamedTuple,
                    Optional, Sequence, Set, Tuple, Union)

from ..errors import InconsistentRulesError, PipelineError
from ..relational import Row, Schema, Table
from .engine import CompiledRuleSet, _is_instrumented, compile_for_schema
from .indexes import InvertedIndex
from .repair import (AppliedFix, RepairResult, RuleInput, TableRepairReport,
                     _as_rule_list)
from .rule import FixingRule
from .supervisor import (ERROR_MARK, ChunkSupervisor, OpaqueChunk,
                         SupervisorConfig, WorkerFaultPlan)

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - py3.8+/platform gaps
    _shared_memory = None

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_COST_MODEL",
    "VALID_TRANSPORTS",
    "fork_available",
    "shm_available",
    "active_shm_segments",
    "default_workers",
    "cpus_usable",
    "forced_workers_env",
    "resolve_workers",
    "plan_chunks",
    "BatchRepairKernel",
    "IPCCostModel",
    "ShmChunkRef",
    "ParallelRepairExecutor",
    "parallel_repair_table",
]

#: Default rows per shard for the streaming path.  Large enough that
#: pickling amortizes, small enough that checkpoints stay frequent.
DEFAULT_CHUNK_SIZE = 1024

#: First element of a worker-side per-row error marker (see
#: :func:`_repair_chunk_task`); re-exported from the supervisor, which
#: mints the same markers for poison rows.
_ERROR_MARK = ERROR_MARK


def fork_available() -> bool:
    """Can this platform start workers with ``fork``?

    The executor relies on cheap process startup plus a one-shot
    initializer broadcast; without ``fork`` (e.g. Windows) the serial
    path is used instead.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def shm_available() -> bool:
    """Can chunks ride to workers as ``multiprocessing.shared_memory``
    segments?  Requires both the module (3.8+) and ``fork`` (the
    executor's only pool flavor)."""
    return _shared_memory is not None and fork_available()


def forced_workers_env() -> bool:
    """Is ``REPRO_FORCE_WORKERS`` set to a truthy value?

    The process-wide escape hatch that makes harnesses exercise real
    pools on single-core runners; it also disables the IPC cost-model
    fallback in :func:`repro.core.repair.repair_table`, for the same
    reason it disables the CPU-count gate — a forced pool is a request
    to *test the pool*, not to win the race.
    """
    return (os.environ.get("REPRO_FORCE_WORKERS", "")
            .strip().lower() not in ("", "0", "false", "no"))


def default_workers() -> int:
    """Worker count used when ``workers`` is passed as ``None``."""
    return os.cpu_count() or 1


def cpus_usable() -> int:
    """CPUs the scheduler actually grants this process.

    ``os.cpu_count()`` reports the machine; containers and cgroup
    affinity masks routinely grant less.  The parallelism heuristic
    must reason about the granted number — forking four workers onto
    one usable core is all IPC and no compute.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int],
                    force_workers: bool = False) -> int:
    """The pointless-parallelism guard used by the high-level drivers.

    ``BENCH_parallel.json`` measured the sharded executor at **0.31x**
    of serial throughput on a box with a single usable CPU: per-row
    repair is too cheap to amortize fork + pickle IPC unless real
    cores run the workers.  So ``repair_table``, ``repair_csv_file``
    and the CLI resolve their ``workers`` argument here: a request for
    parallelism on a machine with fewer than two usable CPUs warns and
    runs serial — identical output, strictly faster — unless
    *force_workers* (CLI: ``--force-workers``) insists.  The low-level
    drivers (:func:`parallel_repair_table`,
    :class:`ParallelRepairExecutor`) stay un-gated: tests and the
    chaos harness need real pools regardless of core count.

    The ``REPRO_FORCE_WORKERS`` environment variable (any value other
    than empty/``0``/``false``/``no``) forces pools process-wide —
    the escape hatch for harnesses that must exercise real pools on
    single-core CI runners without threading a flag through every
    call site.
    """
    if workers is None:
        workers = default_workers()
    if not force_workers:
        force_workers = forced_workers_env()
    if workers > 1 and not force_workers and cpus_usable() < 2:
        warnings.warn(
            "workers=%d requested but only %d CPU(s) are usable by this "
            "process; multiprocessing would slow the repair down "
            "(measured 0.31x), so running serial instead — pass "
            "force_workers=True (CLI: --force-workers) to insist"
            % (workers, cpus_usable()), RuntimeWarning, stacklevel=3)
        return 1
    return workers


def plan_chunks(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Deterministic shard boundaries: ``[start, stop)`` pairs covering
    ``range(total)`` in order.

    The plan is a pure function of ``(total, chunk_size)``, so a
    resumed run shards the remaining rows the same way every time —
    and because tuple repairs are independent, the merged output is
    identical under *any* plan; determinism here is about predictable
    scheduling and checkpoint cadence, not output content.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1, got %d" % chunk_size)
    if total < 0:
        raise ValueError("total must be >= 0, got %d" % total)
    return [(start, min(start + chunk_size, total))
            for start in range(0, total, chunk_size)]


# -- shared-memory chunk transport -------------------------------------------
#
# The pickle transport serializes every cell string per task.  The shm
# transport instead dictionary-encodes each chunk into the columnar
# flat-buffer format (repro.core.columnar), parks the bytes in a
# multiprocessing.shared_memory segment, and ships only a tiny
# ShmChunkRef descriptor through the pool pipe.  Ownership is strictly
# parent-side: the parent creates, tracks, and unlinks every segment;
# workers attach read-only, copy what they need, and detach — so a
# SIGKILLed worker can never leak a segment (the chaos tests assert
# active_shm_segments() drains to empty).

#: Valid values for the executor/driver ``transport`` argument.
VALID_TRANSPORTS = ("auto", "pickle", "shm")

#: Shared-memory segments currently owned (created, not yet unlinked)
#: by this process, keyed by segment name.
_ACTIVE_SEGMENTS: Dict[str, object] = {}


def active_shm_segments() -> Tuple[str, ...]:
    """Names of shared-memory segments this process currently holds.

    The leak probe: after any shm-transport run — including one where
    the supervisor killed and replaced workers mid-chunk — this must
    be empty."""
    return tuple(sorted(_ACTIVE_SEGMENTS))


class ShmChunkRef(OpaqueChunk):
    """Descriptor of one columnar chunk parked in shared memory.

    This is what actually crosses the pool pipe under the shm
    transport: segment name, payload length, and row count.  It is an
    :class:`~repro.core.supervisor.OpaqueChunk`, so the supervisor
    resubmits it verbatim on retry (the parent keeps the segment alive
    until the chunk's outcomes have been merged) and materializes it
    back into row lists only for bisection or serial degradation.
    """

    __slots__ = ("name", "nbytes", "rows")

    def __init__(self, name: str, nbytes: int, rows: int):
        self.name = name
        self.nbytes = nbytes
        self.rows = rows

    def __len__(self) -> int:
        return self.rows

    def __getstate__(self):
        return (self.name, self.nbytes, self.rows)

    def __setstate__(self, state):
        self.name, self.nbytes, self.rows = state

    def __repr__(self) -> str:
        return ("ShmChunkRef(name=%r, nbytes=%d, rows=%d)"
                % (self.name, self.nbytes, self.rows))


def _create_segment(payload: bytes, rows: int) -> ShmChunkRef:
    """Parent side: park *payload* in a fresh segment and register it."""
    seg = _shared_memory.SharedMemory(create=True,
                                      size=max(1, len(payload)))
    seg.buf[:len(payload)] = payload
    _ACTIVE_SEGMENTS[seg.name] = seg
    return ShmChunkRef(seg.name, len(payload), rows)


def _release_segment(name: str) -> None:
    """Parent side: close and unlink one owned segment (idempotent)."""
    seg = _ACTIVE_SEGMENTS.pop(name, None)
    if seg is None:
        return
    try:
        seg.close()
    finally:
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _segment_payload(ref: ShmChunkRef) -> bytes:
    """Parent side: copy a registered segment's payload back out (for
    materializing an opaque chunk into plain rows)."""
    seg = _ACTIVE_SEGMENTS.get(ref.name)
    if seg is not None:
        return bytes(seg.buf[:ref.nbytes])
    # Not ours (already released, or another process created it):
    # attach, copy, detach — never unlink what we do not own.
    seg = _shared_memory.SharedMemory(name=ref.name)
    try:
        _untrack_segment(seg)
        return bytes(seg.buf[:ref.nbytes])
    finally:
        seg.close()


def _untrack_segment(seg) -> None:
    """Tell the resource tracker this process does NOT own *seg*.

    ``SharedMemory(name=...)`` auto-registers the mapping (Python
    < 3.13 has no ``track=False``).  Only used when attaching to a
    segment this process's registry has never seen — pool workers must
    NOT call it: a fork pool shares the parent's tracker, where the
    name is already registered by the creating side and unregistering
    would clobber that entry.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


class IPCCostModel(NamedTuple):
    """Back-of-envelope model deciding whether forking will pay off.

    ``BENCH_parallel.json`` measured the pickle transport at 0.31x of
    serial on one usable CPU: repair is ~11 µs/row of compute while
    fork startup and per-row IPC are pure overhead.  The model is
    deliberately coarse — its one job is the sign of the decision
    ("will N workers beat serial here?"), which is dominated by row
    count, usable cores, and per-row transport cost.
    """

    #: Measured serial throughput of the compiled engine (rows/s).
    serial_rows_per_sec: float = 92_000.0
    #: Per-row cost of the pickle transport: serialize + pipe + parse.
    pickle_seconds_per_row: float = 4e-6
    #: Per-row cost of the shm transport: dictionary-encode + copy.
    shm_seconds_per_row: float = 1.5e-6
    #: One-time fork/initializer cost for the pool.
    pool_startup_seconds: float = 0.3

    def predicted_speedup(self, n_rows: int, workers: int,
                          transport: str = "shm",
                          usable: Optional[int] = None) -> float:
        """Expected (serial time) / (parallel time); > 1 means fork."""
        if n_rows <= 0:
            return 0.0
        serial = n_rows / self.serial_rows_per_sec
        per_row = (self.shm_seconds_per_row if transport == "shm"
                   else self.pickle_seconds_per_row)
        effective = max(1, min(workers, usable if usable is not None
                               else cpus_usable()))
        # Compute shrinks with cores; transport and startup do not.
        parallel = (serial / effective + n_rows * per_row
                    + self.pool_startup_seconds)
        return serial / parallel


#: The model instance the drivers consult.
DEFAULT_COST_MODEL = IPCCostModel()


def parallel_predicted_to_win(n_rows: int, workers: int,
                              transport: str = "auto",
                              model: Optional[IPCCostModel] = None) -> bool:
    """Should a driver fork *workers* pools for *n_rows*, or stay
    serial?  Consulted by ``repair_table`` unless workers are forced."""
    model = model or DEFAULT_COST_MODEL
    resolved = ("shm" if transport in ("auto", "shm") and shm_available()
                else "pickle")
    return model.predicted_speedup(n_rows, workers, resolved) > 1.0


class BatchRepairKernel(CompiledRuleSet):
    """Backward-compatible alias for the compiled rule engine.

    PR 2 introduced this class as a positional re-formulation of
    ``lRepair``; the engine consolidation moved that implementation —
    verbatim, chase order and all — to
    :class:`repro.core.engine.CompiledRuleSet` so every driver shares
    it.  The subclass only keeps the historical constructor signature
    (the optional prebuilt :class:`InvertedIndex`, which the compiled
    layout no longer needs).
    """

    __slots__ = ()

    def __init__(self, schema: Schema, rules: RuleInput,
                 index: Optional[InvertedIndex] = None):
        del index  # the compiled layout supersedes the inverted index
        super().__init__(schema, rules)


# -- worker-side plumbing ----------------------------------------------------
#
# Each pool worker holds exactly one compiled engine, installed by the
# initializer from a pickled (schema, rules, fingerprint, verdict,
# fault_plan) blob shipped once at pool startup.  Tasks then carry
# only (chunk_id, [row values...]) and return (chunk_id, [encoded
# outcome...]).

_WORKER_KERNEL: Optional[CompiledRuleSet] = None
_WORKER_FAULTS: Optional[WorkerFaultPlan] = None
#: Lazily-built columnar candidate detector for the shm transport; a
#: worker that only ever sees pickle chunks never builds it.
_WORKER_COLUMNAR = None
#: PID this worker must stay a child of; checked between tasks as the
#: portable fallback to PR_SET_PDEATHSIG.
_PARENT_PID: Optional[int] = None


def _reap_with_parent() -> None:
    """Arrange for this worker to die when its parent does.

    Pool workers block on the task pipe; a SIGKILL to the parent would
    otherwise orphan them there forever (the daemon flag only covers
    clean interpreter exits).  Linux offers PR_SET_PDEATHSIG for
    prompt reaping even mid-wait; every other platform falls back to
    the ``os.getppid()`` poll in :func:`_repair_chunk_task`, which
    exits the worker at its next task once it has been reparented.
    """
    try:
        import ctypes
        import signal as _signal
        libc = ctypes.CDLL(None, use_errno=True)
        PR_SET_PDEATHSIG = 1
        libc.prctl(PR_SET_PDEATHSIG, _signal.SIGTERM)
        if os.getppid() == 1:  # parent already gone before prctl took
            os._exit(1)
    except Exception:  # pragma: no cover - non-Linux libc
        pass


def _init_worker(blob: bytes) -> None:
    global _WORKER_KERNEL, _WORKER_FAULTS, _WORKER_COLUMNAR, _PARENT_PID
    _PARENT_PID = os.getppid()
    _reap_with_parent()
    schema, rules, fingerprint, verified_consistent, fault_plan = \
        pickle.loads(blob)
    _WORKER_KERNEL = CompiledRuleSet(schema, rules)
    _WORKER_KERNEL._fingerprint = fingerprint
    _WORKER_FAULTS = fault_plan
    _WORKER_COLUMNAR = None  # fork may have copied a stale parent value
    if verified_consistent:
        # The parent already scanned this Σ; seed the worker-local
        # verdict cache so no code path re-checks it in-worker.
        from .consistency import seed_conflict_cache
        seed_conflict_cache(fingerprint)


def _repair_chunk_task(task):
    chunk_id, rows = task
    # Portable orphan guard: PR_SET_PDEATHSIG reaps us promptly on
    # Linux; everywhere else this getppid() poll notices reparenting
    # (parent hard-killed) between tasks and exits instead of leaking.
    if _PARENT_PID is not None and os.getppid() != _PARENT_PID:
        os._exit(2)
    kernel = _WORKER_KERNEL
    if kernel is None:  # pragma: no cover - initializer always runs
        raise RuntimeError("worker used before initialization")
    plan = _WORKER_FAULTS
    if isinstance(rows, ShmChunkRef):
        return chunk_id, _repair_shm_chunk(kernel, plan, rows)
    out = []
    for values in rows:
        try:
            if plan is not None:
                plan.maybe_fire(values)
            out.append(kernel.repair_values(values))
        except Exception as exc:  # per-row capture: the error policy
            out.append((_ERROR_MARK, type(exc).__name__, str(exc)))
    return chunk_id, out


def _repair_shm_chunk(kernel: CompiledRuleSet,
                      plan: Optional[WorkerFaultPlan],
                      ref: ShmChunkRef) -> list:
    """Worker side of the shm transport: attach, copy, detach, repair.

    The worker never owns the segment — it unregisters the attachment
    from its resource tracker (the parent unlinks), decodes the
    columnar buffer, and produces the exact same encoded outcomes as
    the pickle path so the parent's merge loop cannot tell transports
    apart.
    """
    global _WORKER_COLUMNAR
    from .columnar import ColumnarKernel, ColumnarTable
    # Attaching auto-registers the name with the resource tracker; in
    # a fork pool that tracker is *shared* with the parent, so the
    # registration is a set-dedupe no-op (the parent registered at
    # create) and must NOT be undone here — unregistering would
    # clobber the parent's entry and its later unlink() would spam
    # tracker KeyErrors.  Ownership stays parent-side either way.
    seg = _shared_memory.SharedMemory(name=ref.name)
    try:
        ctable = ColumnarTable.from_buffer(kernel.schema,
                                           seg.buf[:ref.nbytes])
    finally:
        seg.close()
    out = [None] * ctable.n_rows
    if plan is not None:
        # An armed fault plan triggers on row *values*; decode every
        # row so chaos fires exactly as it would under pickle.
        for i in range(ctable.n_rows):
            values = ctable.row_values(i)
            try:
                plan.maybe_fire(values)
                out[i] = kernel.repair_values(values)
            except Exception as exc:
                out[i] = (_ERROR_MARK, type(exc).__name__, str(exc))
        return out
    if _WORKER_COLUMNAR is None:
        _WORKER_COLUMNAR = ColumnarKernel(kernel)
    row_values = ctable.row_values
    for i in _WORKER_COLUMNAR.candidate_indices(ctable):
        try:
            out[i] = kernel.repair_values(row_values(i))
        except Exception as exc:
            out[i] = (_ERROR_MARK, type(exc).__name__, str(exc))
    return out


def is_error_marker(encoded) -> bool:
    """Did this per-row outcome record a worker-side exception?"""
    return (isinstance(encoded, tuple) and len(encoded) == 3
            and encoded[0] == _ERROR_MARK)


def _make_serial_runner(schema: Schema, rule_list):
    """In-process chunk runner for the supervisor's degraded mode.

    Produces the same encoded outcomes as :func:`_repair_chunk_task`
    (including per-row error markers), so the merge loops cannot tell
    which side executed a chunk.  The kernel is compiled lazily: a run
    that never degrades never pays for it.
    """
    holder: List[CompiledRuleSet] = []

    def run(rows):
        if not holder:
            holder.append(CompiledRuleSet(schema, list(rule_list)))
        kernel = holder[0]
        out = []
        for values in rows:
            try:
                out.append(kernel.repair_values(values))
            except Exception as exc:
                out.append((_ERROR_MARK, type(exc).__name__, str(exc)))
        return out

    return run


class ParallelRepairExecutor:
    """A supervised ``fork`` pool that shards repair work and merges it
    in order.

    Parameters
    ----------
    schema, rules:
        Broadcast once per worker via the pool initializer; each worker
        compiles its :class:`~repro.core.engine.CompiledRuleSet`
        exactly once, so per-task payloads are raw cell values only.
    workers:
        Pool size; must be >= 2 (use the serial path below that).
    verified_consistent:
        Set when the parent has already checked Σ; the fingerprint and
        verdict ride in the init blob so workers seed their verdict
        cache instead of ever re-scanning Σ.
    supervisor:
        A :class:`~repro.core.supervisor.SupervisorConfig` tuning
        deadlines, retries, backoff, and degradation; ``None`` uses
        the defaults (no chunk deadline, two retries, degradation on).
    fault_plan:
        Optional :class:`~repro.core.supervisor.WorkerFaultPlan`
        shipped to the workers — the chaos-testing hook.
    transport:
        How chunks cross the process boundary.  ``"pickle"`` ships row
        value lists through the pool pipe; ``"shm"`` dictionary-encodes
        each chunk into a columnar flat buffer parked in a
        ``multiprocessing.shared_memory`` segment and ships only a
        :class:`ShmChunkRef`; ``"auto"`` (default) picks shm whenever
        the platform supports it and Σ is not instrumented (the
        columnar candidate detector cannot run instrumented rules).
        Segments are parent-owned: created before submission, unlinked
        as soon as the chunk's outcomes are merged (and
        unconditionally at close/terminate), so worker crashes cannot
        leak them.

    Use as a context manager: a clean exit drains the pool with
    ``close()``/``join()`` so in-flight state winds down in an
    orderly way, while an exceptional exit (or any run the supervisor
    flagged as failed) tears the pool down with ``terminate()``.
    """

    def __init__(self, schema: Schema, rules: RuleInput, workers: int,
                 verified_consistent: bool = False,
                 supervisor: Optional[SupervisorConfig] = None,
                 fault_plan: Optional[WorkerFaultPlan] = None,
                 transport: str = "auto"):
        if workers < 2:
            raise ValueError("ParallelRepairExecutor needs workers >= 2, "
                             "got %d (use the serial path)" % workers)
        if transport not in VALID_TRANSPORTS:
            raise ValueError("unknown transport %r (valid: %s)"
                             % (transport, ", ".join(VALID_TRANSPORTS)))
        rule_list = tuple(_as_rule_list(rules))
        instrumented = any(_is_instrumented(rule) for rule in rule_list)
        if transport == "shm":
            if not shm_available():
                raise RuntimeError(
                    "transport='shm' requested but multiprocessing."
                    "shared_memory (or fork) is unavailable here")
            if instrumented:
                raise ValueError(
                    "transport='shm' cannot ship instrumented rule "
                    "sets (the columnar detector bypasses per-row "
                    "match accounting); use transport='pickle'")
        elif transport == "auto":
            transport = ("shm" if shm_available() and not instrumented
                         else "pickle")
        from .engine import rules_fingerprint
        blob = pickle.dumps((schema, rule_list,
                             rules_fingerprint(rule_list),
                             bool(verified_consistent),
                             fault_plan),
                            protocol=pickle.HIGHEST_PROTOCOL)
        context = (multiprocessing.get_context("fork") if fork_available()
                   else multiprocessing.get_context())
        if transport == "shm":
            # Start the resource tracker BEFORE forking the pool: the
            # first segment is only created after the workers exist,
            # and a worker attaching with no inherited tracker would
            # lazily fork its own — which then mis-reports the
            # parent-owned segment as leaked when the worker exits.
            # Pre-started, every process shares one tracker and the
            # attach-time registration dedupes against the parent's.
            try:
                from multiprocessing import resource_tracker
                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - tracker internals
                pass
        self.workers = workers
        self.transport = transport
        self._schema = schema
        #: Segment names created by this executor, not yet released.
        self._segments: Set[str] = set()
        self._supervisor = ChunkSupervisor(
            workers=workers,
            spawn=lambda: context.Pool(processes=workers,
                                       initializer=_init_worker,
                                       initargs=(blob,)),
            task=_repair_chunk_task,
            serial_runner=_make_serial_runner(schema, rule_list),
            config=supervisor,
            materialize=self._materialize_chunk)
        self._closed = False

    @property
    def stats(self):
        """Per-run :class:`~repro.core.instrumentation.SupervisorStats`."""
        return self._supervisor.stats

    @property
    def degraded(self) -> bool:
        """True once execution fell back to in-process serial chunks."""
        return self._supervisor.degraded

    @property
    def _pool(self):
        # Kept for tests and introspection; the supervisor owns the
        # pool because it must be able to rebuild it mid-run.
        return self._supervisor.pool

    def map_chunks(self, chunks: Iterable[Sequence[Sequence[str]]],
                   max_inflight: Optional[int] = None) -> Iterator[list]:
        """Repair *chunks* (each a list of row value lists), yielding
        per-chunk outcome lists **in submission order**, exactly once
        each, under supervision (deadlines, retries, bisection,
        degradation — see :mod:`repro.core.supervisor`).

        At most ``max_inflight`` (default ``2 × workers``) chunks are
        outstanding at once, bounding memory for unbounded inputs.
        Exceptions raised by the *chunks* iterable itself propagate to
        the caller between submissions — the streaming path relies on
        this for fault-injection kills.

        Under the shm transport each chunk is encoded at submission
        time and its segment released the moment its outcomes are
        yielded, so live segments stay bounded by the in-flight window.
        """
        if self.transport != "shm":
            return self._supervisor.map_chunks(chunks, max_inflight)
        return self._map_chunks_shm(chunks, max_inflight)

    def _map_chunks_shm(self, chunks, max_inflight) -> Iterator[list]:
        inflight: deque = deque()  # segment names in submission order

        def encoded():
            from .columnar import ColumnarTable
            for chunk in chunks:
                rows = chunk if isinstance(chunk, list) else list(chunk)
                payload = ColumnarTable.from_rows(self._schema,
                                                  rows).to_buffer()
                ref = _create_segment(payload, len(rows))
                self._segments.add(ref.name)
                inflight.append(ref.name)
                yield ref

        try:
            for outcomes in self._supervisor.map_chunks(encoded(),
                                                        max_inflight):
                self._release(inflight.popleft())
                yield outcomes
        finally:
            while inflight:
                self._release(inflight.popleft())

    def _release(self, name: str) -> None:
        self._segments.discard(name)
        _release_segment(name)

    def _release_all(self) -> None:
        for name in list(self._segments):
            self._release(name)

    def _materialize_chunk(self, ref) -> List[list]:
        """Supervisor hook: decode an opaque shm chunk back into plain
        row lists (for bisection / serial degradation)."""
        from .columnar import ColumnarTable
        payload = _segment_payload(ref)
        ctable = ColumnarTable.from_buffer(self._schema, payload)
        return [ctable.row_values(i) for i in range(ctable.n_rows)]

    def close(self) -> None:
        """Graceful shutdown for the clean path: ``close()``/``join()``
        lets idle workers drain and exit instead of SIGTERMing them
        mid-breath.  Runs ``terminate()`` instead when the supervisor
        recorded a failure (a rebuilt pool may coexist with stragglers
        from the old one)."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._supervisor.failed:
                self._supervisor.terminate()
            else:
                self._supervisor.close()
        finally:
            self._release_all()

    def terminate(self) -> None:
        """Hard teardown for error/timeout paths: kill in-flight tasks."""
        if self._closed:
            return
        self._closed = True
        try:
            self._supervisor.terminate()
        finally:
            self._release_all()

    def __enter__(self) -> "ParallelRepairExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()

    def __repr__(self) -> str:
        return ("ParallelRepairExecutor(%d workers, transport=%s)"
                % (self.workers, self.transport))


def parallel_repair_table(table: Table, rules: RuleInput,
                          workers: Optional[int] = None,
                          chunk_size: Optional[int] = None,
                          check_consistency: bool = False,
                          verified_consistent: bool = False,
                          supervisor: Optional[SupervisorConfig] = None,
                          fault_plan: Optional[WorkerFaultPlan] = None,
                          transport: str = "auto") -> TableRepairReport:
    """Repair *table* by sharding rows across a worker pool.

    The result — repaired cells, per-row provenance, assured sets,
    aggregate counters — is identical to
    ``repair_table(table, rules)``; only the wall-clock changes.  Falls
    back to the serial driver when ``workers <= 1``, the table is
    empty, or the platform lacks ``fork``.

    *verified_consistent* records that the caller already validated Σ
    (``repair_table(check_consistency=True)`` sets it); either way the
    verdict travels to the workers via their init blob, so Σ is
    scanned at most once per process tree.

    *supervisor* tunes the worker supervision layer (deadlines,
    retries, bisection, degradation); *fault_plan* arms worker-side
    chaos for the fault-injection tests.  A worker-side exception
    while repairing a row — and likewise a poison row isolated by the
    supervisor after repeatedly killing its worker — is re-raised here
    as :class:`~repro.errors.PipelineError` carrying the original type
    name and row provenance: the table driver has no error policy to
    absorb it, matching the serial path's fail-fast behavior.  Use
    ``repair_csv_file(on_error='quarantine')`` to route poison rows to
    a dead-letter file instead.

    *transport* picks how chunks reach the workers (see
    :class:`ParallelRepairExecutor`): ``"auto"`` uses pickle-free
    shared-memory columnar buffers whenever the platform allows.
    """
    from .repair import repair_table  # local: repair imports us lazily

    rule_list = _as_rule_list(rules)
    if check_consistency:
        from .consistency import find_conflicts_cached
        conflicts = find_conflicts_cached(rules, first_only=True)
        if conflicts:
            raise InconsistentRulesError(
                "rule set is inconsistent: %s" % conflicts[0].describe(),
                conflicts)
        verified_consistent = True
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(table) == 0 or not fork_available():
        return repair_table(table, rules, algorithm="fast")
    if chunk_size is None:
        # Aim for a few chunks per worker so stragglers even out.
        chunk_size = max(1, -(-len(table) // (workers * 4)))

    schema = table.schema
    plan = plan_chunks(len(table), chunk_size)
    # Ship the raw cell lists; pickling copies them, so sharing the
    # internal list (rather than rebuilding one per row) is safe.
    source_rows = table._rows
    chunks = ([source_rows[i]._cells for i in range(start, stop)]
              for start, stop in plan)

    # The merge loop runs once per input row while the workers repair
    # ahead of it, so per-row constant costs here directly cap the
    # speedup: trusted constructors, shared empty provenance, and a
    # bulk-adopted result table keep it lean.
    from_trusted = Row.from_trusted
    empty_applied: Tuple = ()
    empty_assured: FrozenSet[str] = frozenset()
    merged_rows: List[Row] = []
    results: List[RepairResult] = []
    with ParallelRepairExecutor(
            schema, rule_list, workers,
            verified_consistent=verified_consistent,
            supervisor=supervisor, fault_plan=fault_plan,
            transport=transport) as executor:
        kernel_view = compile_for_schema(schema, rules)
        for (start, _stop), outcomes in zip(plan,
                                            executor.map_chunks(chunks)):
            for offset, encoded in enumerate(outcomes):
                if encoded is None:
                    row = from_trusted(
                        schema, list(source_rows[start + offset]._cells))
                    result = RepairResult(row, empty_applied,
                                          empty_assured)
                elif is_error_marker(encoded):
                    _mark, error_type, message = encoded
                    raise PipelineError(
                        "row %d failed in a repair worker: %s: %s"
                        % (start + offset, error_type, message))
                else:
                    new_values, applied = encoded
                    result = RepairResult(
                        from_trusted(schema, list(new_values)),
                        kernel_view.expand_applied(applied),
                        kernel_view.assured_for(applied))
                results.append(result)
                merged_rows.append(result.row)
    return TableRepairReport(Table.from_trusted_rows(schema, merged_rows),
                             results)
