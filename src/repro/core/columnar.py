"""Dictionary-encoded columnar repair backend.

The compiled engine (:mod:`repro.core.engine`) already chases raw cell
lists, but it still visits every row and probes per-position dicts
cell by cell.  On realistic workloads the overwhelming majority of
rows are *fixpoints* — no rule fires — and proving that per row is
where the serial time goes.  This module exploits the structure of
fixing rules to prove it in bulk:

**Candidate exactness.**  ``repair_values`` starts with an empty
assured set, so the *first* rule it applies must pass the evidence
re-check against the original cell values and must find the original
``t[B]`` among its negative patterns.  Therefore a row is changed by
the chase **iff** some rule's full evidence pattern matches the
original tuple and the original ``B``-value is one of that rule's
negatives.  That predicate only mentions original values, so it can be
evaluated column-wise over the whole table; rows failing it are
provably fixpoints and never enter the per-row chase at all.  (Cascades
are no exception: a cascade still needs a first application, and that
first application fires on the originals.)

The evaluation runs in *code space*: each column is dictionary-encoded
(distinct values sorted into a dictionary, cells stored as ``int32``
code arrays — numpy when importable, ``array('i')`` otherwise), rules
are grouped by their evidence-position signature, and each group's
firing patterns become a set of integer tuples.  With numpy the tuples
collapse further into mixed-radix ``int64`` keys so a group costs one
vectorized key build plus one ``np.isin``; the pure-Python fallback
walks one ``zip`` of the group's code columns against a tuple set —
still a tight C-level loop.  Columns are encoded lazily, so a serial
repair only pays for the columns Σ actually constrains.  Candidate
rows (typically the noise-rate fraction of the table) are then chased
through the very same :meth:`~repro.core.engine.CompiledRuleSet.
repair_values` hot loop, so cells, provenance, assured sets, and chase
order are identical to the row backend by construction — a property
the differential harness (``tests/test_differential_repair.py``) pins
cell for cell.

Two companion pieces round out the backend:

* :class:`ColumnarRepairReport` — the returned report materializes the
  repaired :class:`~repro.relational.Table` eagerly but keeps per-row
  provenance in the engine's compact ``(rule_id, old_value)`` form,
  rehydrating ``row_results`` on first access.  Building 50K
  ``RepairResult`` tuples costs more than the entire columnar scan;
  most callers (CLI, benchmarks, pipelines) never read them.
* The flat :meth:`ColumnarTable.to_buffer` / :meth:`~ColumnarTable.
  from_buffer` codec — a chunk crosses a process boundary as one
  contiguous byte buffer in ``multiprocessing.shared_memory`` instead
  of a pickled list of lists (see :mod:`repro.core.parallel`).
"""

from __future__ import annotations

import gc
import os
import struct
import sys
from array import array
from typing import (Any, Dict, FrozenSet, List, Optional, Sequence, Tuple,
                    Union)

from ..relational import Row, Schema, Table
from .engine import CompiledRuleSet, compile_for_schema
from .repair import RepairResult, RuleInput, TableRepairReport

__all__ = [
    "COLUMNAR_AUTO_THRESHOLD",
    "ColumnarKernel",
    "ColumnarRepairReport",
    "ColumnarTable",
    "columnar_auto_threshold",
    "columnar_repair_table",
    "numpy_available",
]

#: Row count above which ``repair_table(backend="auto")`` switches the
#: serial fast path to the columnar kernel.  Below it the fixed costs
#: (column encode, group key build) eat the per-row win.
COLUMNAR_AUTO_THRESHOLD = 4096


def columnar_auto_threshold(override: Optional[int] = None) -> int:
    """Resolve the auto-routing row threshold, with validation.

    Precedence: explicit *override* (``repair_table``'s
    ``columnar_threshold=`` / the CLI ``--columnar-threshold`` flag),
    then the ``REPRO_COLUMNAR_THRESHOLD`` environment variable, then
    the built-in :data:`COLUMNAR_AUTO_THRESHOLD`.  The threshold must
    be an integer >= 1; anything else raises :class:`ValueError`
    naming the offending source, so a typo in deployment config fails
    loudly instead of silently pinning a backend.
    """
    if override is not None:
        return _validated_threshold(override, "columnar_threshold")
    raw = os.environ.get("REPRO_COLUMNAR_THRESHOLD")
    if raw is None or raw == "":
        return COLUMNAR_AUTO_THRESHOLD
    return _validated_threshold(raw, "REPRO_COLUMNAR_THRESHOLD")


def _validated_threshold(value, source: str) -> int:
    try:
        threshold = int(value)
    except (TypeError, ValueError):
        raise ValueError("%s must be an integer >= 1, got %r"
                         % (source, value))
    if threshold < 1:
        raise ValueError("%s must be an integer >= 1, got %r"
                         % (source, value))
    return threshold

#: Mixed-radix keys use int64; groups whose dictionary-size product
#: exceeds this fall back to per-pattern equality masks.
_RADIX_LIMIT = 2 ** 62


def _load_numpy():
    """Import numpy unless the pure-Python fallback is forced.

    ``REPRO_NO_NUMPY`` (any non-empty value) makes the whole backend
    behave as if numpy were not installed — the CI lever that keeps the
    fallback tested on machines that do have numpy.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - depends on environment
        return None
    return numpy


_NUMPY = _load_numpy()

_HEADER = struct.Struct("<4sBII")
_U32 = struct.Struct("<I")
_MAGIC = b"RCT1"
_VERSION = 1

#: True when ``array('i')`` is 4-byte little-endian (every mainstream
#: platform); the buffer codec then round-trips code arrays with
#: zero-copy ``tobytes``/``frombytes`` instead of struct packing.
_NATIVE_I32 = (array("i").itemsize == 4 and sys.byteorder == "little")


def numpy_available() -> bool:
    """Is the numpy code path active (installed and not disabled)?"""
    return _NUMPY is not None


def _resolve_numpy(use_numpy: Optional[bool]):
    """Map the ``use_numpy`` override onto a numpy module or ``None``."""
    if use_numpy is None:
        return _NUMPY
    if not use_numpy:
        return None
    if _NUMPY is None:
        raise RuntimeError(
            "use_numpy=True but numpy is unavailable "
            "(not installed, or disabled via REPRO_NO_NUMPY)")
    return _NUMPY


class ColumnarTable:
    """A table as per-column dictionaries plus int32 code arrays.

    The encoding is exact and deterministic: each column's dictionary
    is its sorted distinct values, so two tables with equal cells
    encode identically (regardless of row order history or hash
    seeding) and decoding reproduces every cell byte for byte —
    unicode, empty strings, NUL-containing sentinels included.  Cells
    must be ``str`` (the invariant :class:`~repro.relational.Row`
    already enforces).

    Columns built from rows encode *lazily*: a column pays the
    sort-and-intern cost only when something asks for its codes
    (the kernel asks for Σ's evidence/target columns; the buffer
    codec asks for all of them).  Tables decoded from a buffer carry
    eager codes and build their value→code indexes lazily instead.
    """

    __slots__ = ("schema", "n_rows", "use_numpy", "_raw", "_dictionaries",
                 "_codes", "_indexes")

    def __init__(self, schema: Schema, dictionaries: List[List[str]],
                 codes: List[Any], n_rows: int, use_numpy: bool,
                 raw_columns: Optional[List[Sequence[str]]] = None):
        self.schema = schema
        self._dictionaries = dictionaries
        self._codes = codes
        self.n_rows = n_rows
        self.use_numpy = use_numpy
        self._raw = raw_columns
        self._indexes: List[Optional[Dict[str, int]]] = \
            [None] * len(dictionaries)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Sequence[str]],
                  use_numpy: Optional[bool] = None) -> "ColumnarTable":
        """Wrap row-major cell values (each row in schema order)."""
        np_mod = _resolve_numpy(use_numpy)
        n_cols = len(schema)
        n_rows = len(rows)
        if n_rows:
            columns: List[Sequence[str]] = list(zip(*rows))
            if len(columns) != n_cols:
                raise ValueError("rows have %d columns, schema %r has %d"
                                 % (len(columns), schema.name, n_cols))
        else:
            columns = [()] * n_cols
        return cls(schema, [None] * n_cols, [None] * n_cols, n_rows,
                   np_mod is not None, raw_columns=columns)

    @classmethod
    def from_table(cls, table: Table,
                   use_numpy: Optional[bool] = None) -> "ColumnarTable":
        return cls.from_rows(table.schema,
                             [row._cells for row in table],
                             use_numpy=use_numpy)

    def _encode(self, pos: int) -> None:
        column = self._raw[pos]
        dictionary = sorted(set(column))
        index = {value: code for code, value in enumerate(dictionary)}
        if self.use_numpy:
            codes = _NUMPY.fromiter(map(index.__getitem__, column),
                                    dtype=_NUMPY.int32, count=len(column))
        else:
            codes = array("i", map(index.__getitem__, column))
        self._dictionaries[pos] = dictionary
        self._codes[pos] = codes
        self._indexes[pos] = index

    # -- access --------------------------------------------------------------

    def codes_for(self, pos: int):
        """The int32 code array of column *pos* (encoding on demand)."""
        codes = self._codes[pos]
        if codes is None:
            self._encode(pos)
            codes = self._codes[pos]
        return codes

    def dictionary_for(self, pos: int) -> List[str]:
        """Sorted distinct values of column *pos* (encoding on demand)."""
        if self._dictionaries[pos] is None:
            self._encode(pos)
        return self._dictionaries[pos]

    def column_index(self, pos: int) -> Dict[str, int]:
        """``value -> code`` for column *pos*."""
        index = self._indexes[pos]
        if index is None:
            if self._dictionaries[pos] is None:
                self._encode(pos)
            else:
                index = {value: code for code, value
                         in enumerate(self._dictionaries[pos])}
                self._indexes[pos] = index
            index = self._indexes[pos]
        return index

    def row_values(self, i: int) -> List[str]:
        """Decode row *i* into a fresh cell list in schema order."""
        if self._raw is not None:
            return [column[i] for column in self._raw]
        return [dictionary[column[i]] for dictionary, column
                in zip(self._dictionaries, self._codes)]

    def to_rows(self) -> List[List[str]]:
        return [self.row_values(i) for i in range(self.n_rows)]

    def to_table(self) -> Table:
        from_trusted = Row.from_trusted
        return Table.from_trusted_rows(
            self.schema,
            [from_trusted(self.schema, self.row_values(i))
             for i in range(self.n_rows)])

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return ("ColumnarTable(%d rows x %d cols, %s)"
                % (self.n_rows, len(self._dictionaries),
                   "numpy" if self.use_numpy else "array"))

    # -- flat-buffer codec ---------------------------------------------------

    def _codes_bytes(self, column) -> bytes:
        if self.use_numpy:
            return _NUMPY.ascontiguousarray(column, dtype="<i4").tobytes()
        if _NATIVE_I32:
            return column.tobytes()
        return struct.pack("<%di" % len(column), *column)

    def to_buffer(self) -> bytes:
        """Serialize to one contiguous, pickle-free byte buffer.

        Layout (all integers little-endian): magic ``RCT1``, u8
        version, u32 column count, u32 row count; then per column a
        u32 dictionary length, each dictionary value as u32 byte
        length + UTF-8 bytes, and the row-count int32 code array.
        """
        n_cols = len(self._dictionaries)
        parts = [_HEADER.pack(_MAGIC, _VERSION, n_cols, self.n_rows)]
        pack_u32 = _U32.pack
        for pos in range(n_cols):
            dictionary = self.dictionary_for(pos)
            parts.append(pack_u32(len(dictionary)))
            for value in dictionary:
                raw = value.encode("utf-8")
                parts.append(pack_u32(len(raw)))
                parts.append(raw)
            parts.append(self._codes_bytes(self.codes_for(pos)))
        return b"".join(parts)

    @property
    def nbytes(self) -> int:
        """Exact size of :meth:`to_buffer` output, without building it."""
        total = _HEADER.size
        for pos in range(len(self._dictionaries)):
            dictionary = self.dictionary_for(pos)
            total += 4 + 4 * self.n_rows
            for value in dictionary:
                total += 4 + len(value.encode("utf-8"))
        return total

    @classmethod
    def from_buffer(cls, schema: Schema, buffer,
                    use_numpy: Optional[bool] = None) -> "ColumnarTable":
        """Decode a :meth:`to_buffer` payload.

        *buffer* may be any bytes-like object (including a
        ``shared_memory`` view); all decoded state is copied out, so
        the caller may release the underlying segment immediately
        after this returns.
        """
        np_mod = _resolve_numpy(use_numpy)
        view = memoryview(buffer)
        if view.nbytes < _HEADER.size:
            raise ValueError("not a columnar chunk buffer (%d bytes is "
                             "shorter than the header)" % view.nbytes)
        magic, version, n_cols, n_rows = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC or version != _VERSION:
            raise ValueError("not a columnar chunk buffer "
                             "(magic=%r version=%r)" % (magic, version))
        if n_cols != len(schema):
            raise ValueError("buffer has %d columns, schema %r has %d"
                             % (n_cols, schema.name, len(schema)))
        offset = _HEADER.size
        unpack_u32 = _U32.unpack_from
        dictionaries: List[List[str]] = []
        codes: List[Any] = []
        for _ in range(n_cols):
            (dict_len,) = unpack_u32(view, offset)
            offset += 4
            dictionary = []
            for _ in range(dict_len):
                (nbytes,) = unpack_u32(view, offset)
                offset += 4
                dictionary.append(
                    bytes(view[offset:offset + nbytes]).decode("utf-8"))
                offset += nbytes
            dictionaries.append(dictionary)
            raw = bytes(view[offset:offset + 4 * n_rows])
            if np_mod is not None:
                column = np_mod.frombuffer(
                    raw, dtype="<i4").astype(np_mod.int32, copy=False)
            elif _NATIVE_I32:
                column = array("i")
                column.frombytes(raw)
            else:  # pragma: no cover - exotic platforms
                column = array("i", struct.unpack("<%di" % n_rows, raw))
            offset += 4 * n_rows
            codes.append(column)
        return cls(schema, dictionaries, codes, n_rows,
                   np_mod is not None)


class ColumnarKernel:
    """A :class:`CompiledRuleSet`'s evidence patterns compiled into
    code-space group scans.

    Rules are grouped by ``(sorted evidence positions, B position)``;
    each group's members share one set of code columns, so candidate
    detection over a :class:`ColumnarTable` costs one bulk scan per
    *group* (HOSP's 2,000 mined rules collapse to a handful of FD
    shapes), not per rule.  The kernel holds no table state — one
    kernel serves every chunk of a run.
    """

    __slots__ = ("compiled", "_groups")

    def __init__(self, compiled: CompiledRuleSet):
        if compiled.instrumented:
            raise ValueError(
                "columnar backend cannot run instrumented rule sets "
                "(rules overriding matches/apply run through the "
                "Row-level executor only)")
        self.compiled = compiled
        groups: Dict[Tuple[Tuple[int, ...], int],
                     List[Tuple[Tuple[str, ...], FrozenSet[str]]]] = {}
        for ev_pos, b_pos, negatives, _fact in compiled.evidence_layout():
            ordered = tuple(sorted(ev_pos))
            positions = tuple(pos for pos, _value in ordered)
            values = tuple(value for _pos, value in ordered)
            groups.setdefault((positions, b_pos), []).append(
                (values, negatives))
        self._groups = groups

    # -- candidate detection -------------------------------------------------

    def _group_firing_codes(self, ctable: ColumnarTable,
                            positions: Tuple[int, ...], b_pos: int,
                            members) -> set:
        """The group's firing patterns as code tuples over
        ``positions + (b_pos,)``.  Rules (or negatives) mentioning a
        value absent from the column dictionary cannot fire on the
        original tuples and drop out here."""
        indexes = [ctable.column_index(pos) for pos in positions]
        b_index = ctable.column_index(b_pos)
        firing: set = set()
        for values, negatives in members:
            ev_codes = []
            for index, value in zip(indexes, values):
                code = index.get(value)
                if code is None:
                    break
                ev_codes.append(code)
            else:
                base = tuple(ev_codes)
                for negative in negatives:
                    code = b_index.get(negative)
                    if code is not None:
                        firing.add(base + (code,))
        return firing

    def candidate_mask(self, ctable: ColumnarTable):
        """Per-row candidate flags (numpy bool array or bytearray).

        A set flag means "some rule's evidence matches this row's
        original values and its original B-value is among that rule's
        negatives" — exactly the rows ``repair_values`` would change;
        see the module docstring for why the predicate is exact.
        """
        n = ctable.n_rows
        np_mod = _NUMPY if ctable.use_numpy else None
        mask = (np_mod.zeros(n, dtype=bool) if np_mod is not None
                else bytearray(n))
        if n == 0:
            return mask
        for (positions, b_pos), members in self._groups.items():
            firing = self._group_firing_codes(ctable, positions, b_pos,
                                              members)
            if not firing:
                continue
            scan_positions = positions + (b_pos,)
            columns = [ctable.codes_for(pos) for pos in scan_positions]
            if np_mod is not None:
                self._scan_group_numpy(np_mod, mask, ctable,
                                       scan_positions, columns, firing)
            else:
                for i, codes in enumerate(zip(*columns)):
                    if codes in firing:
                        mask[i] = 1
        return mask

    @staticmethod
    def _scan_group_numpy(np_mod, mask, ctable, scan_positions, columns,
                          firing) -> None:
        radices = [max(1, len(ctable.dictionary_for(pos)))
                   for pos in scan_positions]
        capacity = 1
        for radix in radices:
            capacity *= radix
        if capacity <= _RADIX_LIMIT:
            # Mixed-radix: each row's codes over the group columns
            # collapse into one int64 key; one isin per group.
            keys = columns[0].astype(np_mod.int64)
            for column, radix in zip(columns[1:], radices[1:]):
                keys *= radix
                keys += column
            firing_keys = np_mod.fromiter(
                (ColumnarKernel._radix_key(codes, radices)
                 for codes in firing),
                dtype=np_mod.int64, count=len(firing))
            mask |= np_mod.isin(keys, firing_keys)
            return
        # Degenerate dictionaries (key would overflow int64): equality
        # masks per firing pattern instead.
        for codes in firing:
            hit = columns[0] == codes[0]
            for column, code in zip(columns[1:], codes[1:]):
                hit &= column == code
            mask |= hit

    @staticmethod
    def _radix_key(codes, radices) -> int:
        key = codes[0]
        for code, radix in zip(codes[1:], radices[1:]):
            key = key * radix + code
        return key

    def candidate_indices(self, ctable: ColumnarTable) -> List[int]:
        mask = self.candidate_mask(ctable)
        if ctable.use_numpy:
            return _NUMPY.flatnonzero(mask).tolist()
        return [i for i, hit in enumerate(mask) if hit]

    # -- repair --------------------------------------------------------------

    def repair_outcomes(self, ctable: ColumnarTable
                        ) -> List[Optional[Tuple[List[str],
                                                 List[Tuple[int, str]]]]]:
        """Per-row ``repair_values`` outcomes, positionally aligned.

        Non-candidate rows are provably fixpoints and get ``None``
        without entering the chase; candidates are decoded and chased
        through the compiled engine, so outcomes (values, provenance
        ids, order) match the row backend exactly.
        """
        from .instrumentation import ENGINE_STATS
        outcomes: List[Optional[Tuple[List[str],
                                      List[Tuple[int, str]]]]] = \
            [None] * ctable.n_rows
        repair_values = self.compiled.repair_values
        row_values = ctable.row_values
        candidates = self.candidate_indices(ctable)
        for i in candidates:
            outcomes[i] = repair_values(row_values(i))
        # Keep the engine's rows-processed accounting identical to the
        # row backend: pruned rows were repaired too (to a fixpoint).
        ENGINE_STATS.rows_repaired += ctable.n_rows - len(candidates)
        return outcomes


class ColumnarRepairReport(TableRepairReport):
    """A :class:`TableRepairReport` whose per-row ``RepairResult``
    objects rehydrate on demand.

    The repaired table is built eagerly — it is the deliverable — but
    provenance stays in the engine's compact ``(rule_id, old_value)``
    form until someone reads :attr:`row_results`; the aggregate views
    (``total_applications``, ``changed_cells``,
    ``applications_by_rule``, ``provenance``) are computed from the
    compact form directly, touching only the rows that changed.
    """

    def __init__(self, table: Table, rows: List[Row],
                 compiled: CompiledRuleSet,
                 applied_by_row: Dict[int, List[Tuple[int, str]]]):
        self.table = table
        self._rows = rows
        self._compiled = compiled
        self._applied_by_row = applied_by_row
        self._materialized: Optional[List[RepairResult]] = None

    @property
    def row_results(self) -> List[RepairResult]:
        if self._materialized is None:
            compiled = self._compiled
            applied_by_row = self._applied_by_row
            empty_applied: Tuple = ()
            empty_assured: FrozenSet[str] = frozenset()
            results = []
            for i, row in enumerate(self._rows):
                applied = applied_by_row.get(i)
                if applied is None:
                    results.append(RepairResult(row, empty_applied,
                                                empty_assured))
                else:
                    results.append(RepairResult(
                        row, compiled.expand_applied(applied),
                        compiled.assured_for(applied)))
            self._materialized = results
        return self._materialized

    @property
    def changed_cells(self) -> List[Tuple[int, str]]:
        rules = self._compiled.rules
        cells: List[Tuple[int, str]] = []
        for i in sorted(self._applied_by_row):
            for rule_id, _old in self._applied_by_row[i]:
                cells.append((i, rules[rule_id].attribute))
        return cells

    @property
    def total_applications(self) -> int:
        return sum(len(applied)
                   for applied in self._applied_by_row.values())

    def applications_by_rule(self) -> Dict[str, int]:
        rules = self._compiled.rules
        counts: Dict[str, int] = {}
        for applied in self._applied_by_row.values():
            for rule_id, _old in applied:
                name = rules[rule_id].name
                counts[name] = counts.get(name, 0) + 1
        return counts

    def provenance(self) -> List[Dict[str, str]]:
        rules = self._compiled.rules
        records: List[Dict[str, str]] = []
        for i in sorted(self._applied_by_row):
            for rule_id, old in self._applied_by_row[i]:
                rule = rules[rule_id]
                records.append({
                    "row": str(i),
                    "attribute": rule.attribute,
                    "old_value": old,
                    "new_value": rule.fact,
                    "rule": rule.name,
                })
        return records

    def __repr__(self) -> str:
        return ("TableRepairReport(%d rows, %d cells changed)"
                % (len(self._rows), self.total_applications))


def columnar_repair_table(table: Table, rules: RuleInput,
                          use_numpy: Optional[bool] = None
                          ) -> ColumnarRepairReport:
    """Repair *table* through the columnar kernel.

    Output is identical — cells, provenance, assured sets, application
    order — to ``repair_table(table, rules)``'s serial fast path; only
    the fixpoint proof strategy (and the report's lazy provenance
    materialization) differs.  Instrumented rule sets are rejected —
    they require the Row-level executor.
    """
    compiled = compile_for_schema(table.schema, rules)
    kernel = ColumnarKernel(compiled)
    schema = table.schema
    source = [row._cells for row in table]
    ctable = ColumnarTable.from_rows(schema, source, use_numpy=use_numpy)
    candidates = kernel.candidate_indices(ctable)
    from .instrumentation import ENGINE_STATS
    ENGINE_STATS.rows_repaired += len(source) - len(candidates)
    from_trusted = Row.from_trusted
    applied_by_row: Dict[int, List[Tuple[int, str]]] = {}
    repair_values = compiled.repair_values
    # The bulk row build allocates ~2 tracked objects per row; none can
    # sit in a reference cycle, but the allocation burst still triggers
    # generational GC passes over the (large, live) input table.  Pause
    # collection — not tracking — for the burst; pending garbage is
    # simply collected a moment later.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        repaired_rows = [from_trusted(schema, list(cells))
                         for cells in source]
        for i in candidates:
            outcome = repair_values(source[i])
            if outcome is not None:
                new_values, applied = outcome
                repaired_rows[i] = from_trusted(schema, new_values)
                applied_by_row[i] = applied
    finally:
        if gc_was_enabled:
            gc.enable()
    return ColumnarRepairReport(
        Table.from_trusted_rows(schema, repaired_rows), repaired_rows,
        compiled, applied_by_row)
