"""The paper's primary contribution: fixing rules and their analyses.

Public surface:

* :class:`FixingRule`, :class:`RuleSet` — rule syntax (Section 3.1);
* :mod:`~repro.core.matching` helpers — match / proper application
  (Section 3.2);
* consistency checking — :func:`is_consistent`,
  :func:`find_conflicts`, the two algorithms ``isConsist_t`` /
  ``isConsist_r`` (Sections 4.2, 5.2);
* implication — :func:`implies`, :func:`minimize` (Section 4.3);
* resolution — :func:`ensure_consistent` (Section 5.3);
* repair — :func:`chase_repair` (cRepair), :func:`fast_repair`
  (lRepair), :func:`repair_table` (Section 6);
* the compiled engine — :mod:`~repro.core.engine`:
  :class:`CompiledRuleSet`, the single positional hot path every
  repair driver (serial, streaming, parallel) executes, plus the
  content fingerprinting behind consistency-verdict caching;
* fault tolerance — :mod:`~repro.core.pipeline`: error policies,
  dead-letter quarantine, checkpoint/resume, fault injection;
* parallel execution — :mod:`~repro.core.parallel`: sharded
  multiprocessing repair (``repair_table(..., workers=N)``) with
  results identical to the serial algorithms;
* supervision — :mod:`~repro.core.supervisor`: chunk deadlines,
  bounded retries with backoff, poison-row isolation by bisection,
  degradation to in-process execution, and the worker-side chaos
  harness (:class:`WorkerFaultPlan`);
* serialization — JSON round-tripping and the φ text notation.
"""

from .rule import FixingRule
from .ruleset import RuleSet
from .matching import (first_proper, is_fixpoint, matching_rules,
                       properly_applicable)
from .indexes import HashCounters, InvertedIndex
from .engine import (CompiledRuleSet, clear_compiled_cache, compile_cached,
                     compile_for_schema, compile_ruleset, rules_fingerprint)
from .consistency import (AssuranceHazard, CASE_B_I_IN_X_J, CASE_B_J_IN_X_I, CASE_ENUMERATED,
                          CASE_MUTUAL, CASE_SAME_ATTRIBUTE, OUT_OF_DOMAIN,
                          VALID_STRATEGIES, Conflict,
                          blocked_candidate_pairs, check_pair_characterize,
                          check_pair_enumerate, clear_conflict_cache,
                          enumerate_candidate_tuples,
                          find_assurance_hazards, find_conflicts,
                          find_conflicts_cached, is_consistent,
                          is_consistent_characterize,
                          is_consistent_enumerate, seed_conflict_cache)
from .implication import implies, iter_small_model, minimize
from .resolution import (DROP_CONFLICTING, SHRINK_NEGATIVES, ResolutionLog,
                         Revision, drop_conflicting, ensure_consistent)
from .repair import (AppliedFix, RepairResult, TableRepairReport,
                     VALID_ALGORITHMS, VALID_BACKENDS, chase_repair,
                     fast_repair, repair_table)
from .columnar import (COLUMNAR_AUTO_THRESHOLD, ColumnarKernel,
                       ColumnarRepairReport, ColumnarTable,
                       columnar_repair_table, numpy_available)
from .parallel import (DEFAULT_COST_MODEL, VALID_TRANSPORTS,
                       BatchRepairKernel, IPCCostModel,
                       ParallelRepairExecutor, ShmChunkRef,
                       active_shm_segments, cpus_usable, default_workers,
                       fork_available, parallel_predicted_to_win,
                       parallel_repair_table, plan_chunks, resolve_workers,
                       shm_available)
from .supervisor import (FAULT_MODES, POISON_ERROR_TYPE, ChunkDeadlineError,
                         ChunkSupervisor, OpaqueChunk, SupervisorConfig,
                         SupervisorError, WorkerCrashError,
                         WorkerFaultInjected, WorkerFaultPlan)
from .serialization import (format_rule, format_ruleset, load_ruleset,
                            rule_from_dict, rule_to_dict, ruleset_from_json,
                            ruleset_to_json, save_ruleset)
from .pipeline import (ERROR_POLICIES, QUARANTINE, SKIP, STRICT, Checkpoint,
                       FaultInjected, FaultInjector, QuarantineWriter,
                       RowError, read_quarantine, replay_quarantine,
                       validate_error_policy)
from .stream import (ON_INCONSISTENT_DEGRADE, ON_INCONSISTENT_RAISE,
                     RepairSession, repair_csv_file, repair_stream)
from .instrumentation import (ENGINE_STATS, SUPERVISOR_STATS, CountingRule,
                              EngineStats, MatchCounter, SupervisorStats,
                              SupervisorStatsSession, counting_rules,
                              engine_stats, reset_engine_stats,
                              reset_supervisor_stats, supervisor_stats)
from .incremental import ConsistentRuleSet
from .columnar import columnar_auto_threshold
from .delta import (CorrectionLog, DeltaError, DeltaOutcome,
                    DeltaRepairSession, SessionSnapshot,
                    audit_correction_log, iter_log_records,
                    replay_correction_log)
from .stream import repair_delta_stream
from .profile import RuleSetProfile, ruleset_profile
from .explain import (APPLIES, EVIDENCE_MISMATCH, TARGET_ASSURED,
                      VALUE_NOT_NEGATIVE, Explanation, RepairExplanation,
                      explain, explain_all, explain_repair)

__all__ = [
    "FixingRule",
    "RuleSet",
    "properly_applicable",
    "matching_rules",
    "first_proper",
    "is_fixpoint",
    "InvertedIndex",
    "HashCounters",
    "CompiledRuleSet",
    "compile_ruleset",
    "compile_for_schema",
    "compile_cached",
    "clear_compiled_cache",
    "rules_fingerprint",
    "Conflict",
    "OUT_OF_DOMAIN",
    "CASE_SAME_ATTRIBUTE",
    "CASE_B_I_IN_X_J",
    "CASE_B_J_IN_X_I",
    "CASE_MUTUAL",
    "CASE_ENUMERATED",
    "check_pair_characterize",
    "check_pair_enumerate",
    "enumerate_candidate_tuples",
    "find_conflicts",
    "find_conflicts_cached",
    "seed_conflict_cache",
    "clear_conflict_cache",
    "blocked_candidate_pairs",
    "VALID_STRATEGIES",
    "AssuranceHazard",
    "find_assurance_hazards",
    "is_consistent",
    "is_consistent_characterize",
    "is_consistent_enumerate",
    "implies",
    "iter_small_model",
    "minimize",
    "DROP_CONFLICTING",
    "SHRINK_NEGATIVES",
    "Revision",
    "ResolutionLog",
    "drop_conflicting",
    "ensure_consistent",
    "AppliedFix",
    "RepairResult",
    "TableRepairReport",
    "VALID_ALGORITHMS",
    "VALID_BACKENDS",
    "chase_repair",
    "fast_repair",
    "repair_table",
    "COLUMNAR_AUTO_THRESHOLD",
    "ColumnarKernel",
    "ColumnarRepairReport",
    "ColumnarTable",
    "columnar_auto_threshold",
    "columnar_repair_table",
    "numpy_available",
    "CorrectionLog",
    "DeltaError",
    "DeltaOutcome",
    "DeltaRepairSession",
    "SessionSnapshot",
    "audit_correction_log",
    "iter_log_records",
    "replay_correction_log",
    "repair_delta_stream",
    "BatchRepairKernel",
    "ParallelRepairExecutor",
    "DEFAULT_COST_MODEL",
    "IPCCostModel",
    "ShmChunkRef",
    "VALID_TRANSPORTS",
    "active_shm_segments",
    "parallel_predicted_to_win",
    "shm_available",
    "default_workers",
    "cpus_usable",
    "resolve_workers",
    "fork_available",
    "parallel_repair_table",
    "plan_chunks",
    "OpaqueChunk",
    "ChunkSupervisor",
    "SupervisorConfig",
    "SupervisorError",
    "ChunkDeadlineError",
    "WorkerCrashError",
    "WorkerFaultPlan",
    "WorkerFaultInjected",
    "POISON_ERROR_TYPE",
    "FAULT_MODES",
    "rule_to_dict",
    "rule_from_dict",
    "ruleset_to_json",
    "ruleset_from_json",
    "save_ruleset",
    "load_ruleset",
    "format_rule",
    "format_ruleset",
    "RepairSession",
    "repair_stream",
    "repair_csv_file",
    "ON_INCONSISTENT_RAISE",
    "ON_INCONSISTENT_DEGRADE",
    "STRICT",
    "SKIP",
    "QUARANTINE",
    "ERROR_POLICIES",
    "validate_error_policy",
    "RowError",
    "Checkpoint",
    "QuarantineWriter",
    "read_quarantine",
    "replay_quarantine",
    "FaultInjected",
    "FaultInjector",
    "MatchCounter",
    "CountingRule",
    "counting_rules",
    "EngineStats",
    "ENGINE_STATS",
    "engine_stats",
    "reset_engine_stats",
    "SupervisorStats",
    "SupervisorStatsSession",
    "SUPERVISOR_STATS",
    "supervisor_stats",
    "reset_supervisor_stats",
    "APPLIES",
    "EVIDENCE_MISMATCH",
    "VALUE_NOT_NEGATIVE",
    "TARGET_ASSURED",
    "Explanation",
    "RepairExplanation",
    "explain",
    "explain_all",
    "explain_repair",
    "ConsistentRuleSet",
    "RuleSetProfile",
    "ruleset_profile",
]
