"""Resolving inconsistent rule sets (Section 5.3).

The paper's workflow (Section 5.1) loops: check consistency → if
inconsistent, let an automatic algorithm or an expert revise the rules
→ re-check.  Termination is guaranteed because revisions may only

* remove whole rules, or
* remove values from negative-pattern sets,

never add anything — so a non-negative measure (total rule size)
strictly decreases on every revision round.

Three strategies are provided:

* :data:`DROP_CONFLICTING` — the conservative algorithm the paper
  sketches: delete every rule involved in any conflict.  Safe but
  throws away useful rules (the paper's own criticism).
* :data:`SHRINK_NEGATIVES` — an automatic stand-in for the expert
  edit illustrated in Fig. 5 (removing ``Tokyo`` from φ1's negative
  patterns): remove from one rule's negative patterns exactly the
  values that create the conflict; drop the rule if its negative
  patterns empty out.
* a user-supplied **expert callback** — called per conflict, returns a
  :class:`Revision`; the workflow enforces the shrink-only discipline.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Union

from ..errors import RuleError
from .consistency import (CASE_B_I_IN_X_J, CASE_B_J_IN_X_I, CASE_MUTUAL,
                          CASE_SAME_ATTRIBUTE, Conflict,
                          check_pair_characterize, find_conflicts)
from .rule import FixingRule
from .ruleset import RuleSet

DROP_CONFLICTING = "drop"
SHRINK_NEGATIVES = "shrink"


class Revision(NamedTuple):
    """One edit produced while resolving a conflict.

    ``replacement is None`` means *rule* is removed outright;
    otherwise *rule* is replaced by *replacement*, whose negative
    patterns must be a strict subset of the original's (the only edit
    the termination argument permits).
    """

    rule: FixingRule
    replacement: Optional[FixingRule]
    reason: str


ExpertCallback = Callable[[Conflict], Revision]


class ResolutionLog(NamedTuple):
    """Outcome of :func:`ensure_consistent`."""

    rules: RuleSet
    revisions: List[Revision]
    rounds: int


def _validate_revision(revision: Revision) -> None:
    if revision.replacement is None:
        return
    old, new = revision.rule, revision.replacement
    if (new.evidence != old.evidence or new.attribute != old.attribute
            or new.fact != old.fact):
        raise RuleError(
            "revision for %s may only change negative patterns" % old.name)
    if not (new.negatives < old.negatives):
        raise RuleError(
            "revision for %s must strictly shrink the negative patterns "
            "(had %r, proposed %r)"
            % (old.name, sorted(old.negatives), sorted(new.negatives)))


def _shrink_for_conflict(conflict: Conflict) -> Revision:
    """The minimal shrink edit disarming *conflict*.

    Mirrors the expert action in Fig. 5: remove from one rule's
    negative patterns the value(s) whose membership triggers the Fig. 4
    case condition.  We always edit ``rule_a`` when both options exist,
    keeping the strategy deterministic.
    """
    a, b = conflict.rule_a, conflict.rule_b
    if conflict.kind == CASE_SAME_ATTRIBUTE:
        keep = a.negatives - b.negatives
        reason = ("removed negatives shared with %s (facts disagree)"
                  % b.name)
        edited = a
    elif conflict.kind == CASE_B_I_IN_X_J:
        keep = a.negatives - {b.evidence[a.attribute]}
        reason = ("removed %r: %s treats it as correct evidence"
                  % (b.evidence[a.attribute], b.name))
        edited = a
    elif conflict.kind == CASE_B_J_IN_X_I:
        keep = b.negatives - {a.evidence[b.attribute]}
        reason = ("removed %r: %s treats it as correct evidence"
                  % (a.evidence[b.attribute], a.name))
        edited = b
    elif conflict.kind == CASE_MUTUAL:
        keep = a.negatives - {b.evidence[a.attribute]}
        reason = ("removed %r to break the mutual read/write cycle with %s"
                  % (b.evidence[a.attribute], b.name))
        edited = a
    else:
        # Enumerated witness (isConsist_t path): fall back to dropping
        # one rule — the witness does not localize a single value.
        return Revision(a, None,
                        "dropped: enumerated conflict with %s" % b.name)
    if keep:
        return Revision(edited, edited.with_negatives(keep), reason)
    return Revision(edited, None,
                    reason + "; negative patterns emptied, rule dropped")


def drop_conflicting(rules: RuleSet) -> ResolutionLog:
    """Remove every rule participating in any conflict (one pass).

    Because consistency is pairwise (Proposition 3), removing all
    members of conflicting pairs leaves a consistent set immediately.
    """
    conflicts = find_conflicts(rules)
    doomed = {}
    for conflict in conflicts:
        doomed[conflict.rule_a.signature()] = conflict.rule_a
        doomed[conflict.rule_b.signature()] = conflict.rule_b
    revisions = [Revision(rule, None, "participates in a conflict")
                 for rule in doomed.values()]
    kept = RuleSet(rules.schema,
                   (r for r in rules if r.signature() not in doomed))
    return ResolutionLog(kept, revisions, rounds=1)


def ensure_consistent(rules: RuleSet,
                      strategy: Union[str, ExpertCallback]
                      = SHRINK_NEGATIVES,
                      max_rounds: Optional[int] = None) -> ResolutionLog:
    """The Section 5.1 workflow: revise until Σ′ is consistent.

    Parameters
    ----------
    rules:
        The input Σ; not mutated.
    strategy:
        :data:`DROP_CONFLICTING`, :data:`SHRINK_NEGATIVES`, or an
        expert callback ``Conflict -> Revision``.  Callback revisions
        are validated to only shrink negatives or drop rules, which
        keeps the loop terminating even with an arbitrary callback.
    max_rounds:
        Optional safety valve; ``None`` relies on the termination
        argument (total rule size strictly decreases).
    """
    if strategy == DROP_CONFLICTING:
        return drop_conflicting(rules)
    if strategy == SHRINK_NEGATIVES:
        expert: ExpertCallback = _shrink_for_conflict
    elif callable(strategy):
        expert = strategy
    else:
        raise ValueError("unknown strategy %r" % (strategy,))

    # Batch rounds: scan all pairs once, resolve every conflict found
    # against the *current* rule versions, repeat.  One pair scan is
    # O(size(Σ)²); resolving conflict-by-conflict with a rescan each
    # time would multiply that by the conflict count.
    current: List[Optional[FixingRule]] = rules.rules()
    revisions: List[Revision] = []
    rounds = 0
    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise RuleError(
                "resolution did not converge within %d rounds" % max_rounds)
        found_any = False
        for i in range(len(current)):
            if current[i] is None:
                continue
            for j in range(i + 1, len(current)):
                if current[j] is None or current[i] is None:
                    continue
                conflict = check_pair_characterize(current[i], current[j])
                if conflict is None:
                    continue
                found_any = True
                revision = expert(conflict)
                _validate_revision(revision)
                revisions.append(revision)
                edited_sig = revision.rule.signature()
                if edited_sig == current[i].signature():
                    current[i] = revision.replacement
                elif edited_sig == current[j].signature():
                    current[j] = revision.replacement
                else:
                    raise RuleError(
                        "expert revision targets %s, which is neither rule "
                        "of the conflict" % revision.rule.name)
                if current[i] is None:
                    break
        if not found_any:
            kept = RuleSet(rules.schema,
                           (rule for rule in current if rule is not None))
            return ResolutionLog(kept, revisions, rounds)
