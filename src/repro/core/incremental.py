"""Incrementally-checked rule sets.

The Section 5.1 workflow is interactive: experts add and revise rules
until Σ is consistent.  Re-running the full ``O(|Σ|²)`` pairwise check
after every single edit is wasteful — by Proposition 3, consistency is
a *pairwise* property, so:

* adding rule φ to a consistent Σ can only create conflicts in the
  ``|Σ|`` pairs ``(φ, ψ)``;
* removing a rule can never create a conflict;
* replacing a rule = remove + add.

:class:`ConsistentRuleSet` wraps a :class:`~repro.core.ruleset.RuleSet`
with exactly that discipline, turning per-edit cost from quadratic to
linear while *guaranteeing* the invariant "this set is consistent" at
every moment.  Rejected additions return the conflict witnesses so an
interactive tool can show them.

``benchmarks/bench_ablation_incremental.py`` quantifies the speedup.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..errors import InconsistentRulesError
from ..relational import Schema
from .consistency import Conflict, check_pair_characterize, find_conflicts
from .rule import FixingRule
from .ruleset import RuleSet


class ConsistentRuleSet:
    """A rule set that is consistent by construction, at all times.

    Parameters
    ----------
    schema:
        Schema the rules live on.
    rules:
        Optional initial rules; checked pairwise once (the only full
        quadratic pass this class ever performs).  Raises
        :class:`~repro.errors.InconsistentRulesError` if they conflict.
    """

    def __init__(self, schema: Schema,
                 rules: Optional[Iterable[FixingRule]] = None):
        self._rules = RuleSet(schema, rules)
        conflicts = find_conflicts(self._rules, first_only=True)
        if conflicts:
            raise InconsistentRulesError(
                "initial rules are inconsistent: %s"
                % conflicts[0].describe(), conflicts)

    # -- queries -----------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._rules.schema

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[FixingRule]:
        return iter(self._rules)

    def __contains__(self, rule: FixingRule) -> bool:
        return rule in self._rules

    def __repr__(self) -> str:
        return "ConsistentRuleSet(%r, %d rules)" % (self.schema.name,
                                                    len(self))

    def as_ruleset(self) -> RuleSet:
        """A plain :class:`RuleSet` copy (consistent, by invariant)."""
        return self._rules.copy()

    @property
    def fingerprint(self) -> str:
        """Content hash of the *current* Σ.

        Every mutation (``add``/``remove``/``replace``/``extend``)
        invalidates the underlying memo, so two reads straddling an
        edit always differ — the property
        :func:`~repro.core.engine.compile_cached` relies on to never
        return a compilation of a previous revision.
        """
        return self._rules.fingerprint()

    def compiled(self, schema: Optional[Schema] = None):
        """Compile the current Σ via the fingerprint-keyed cache.

        Always reflects the latest edits: the cache key is
        :attr:`fingerprint`, which mutation refreshes.  *schema*
        defaults to the rule set's own schema; pass the table's schema
        when positional layouts differ.
        """
        from .engine import compile_cached
        return compile_cached(schema or self.schema, self._rules,
                              fingerprint=self.fingerprint)

    # -- edits -------------------------------------------------------------

    def conflicts_with(self, rule: FixingRule) -> List[Conflict]:
        """Conflicts that adding *rule* would create — O(|Σ|)."""
        rule.validate(self.schema)
        found: List[Conflict] = []
        for existing in self._rules:
            conflict = check_pair_characterize(existing, rule)
            if conflict is not None:
                found.append(conflict)
        return found

    def try_add(self, rule: FixingRule) -> List[Conflict]:
        """Add *rule* if it keeps Σ consistent.

        Returns the empty list on success (including the no-op of
        re-adding a known rule); otherwise returns the conflict
        witnesses and leaves Σ unchanged.
        """
        if rule in self._rules:
            return []
        conflicts = self.conflicts_with(rule)
        if conflicts:
            return conflicts
        self._rules.add(rule)
        return []

    def add(self, rule: FixingRule) -> None:
        """Like :meth:`try_add` but raising on conflict."""
        conflicts = self.try_add(rule)
        if conflicts:
            raise InconsistentRulesError(
                "adding %s would break consistency: %s"
                % (rule.name, conflicts[0].describe()), conflicts)

    def remove(self, rule: FixingRule) -> bool:
        """Remove *rule*; never affects consistency.  Returns whether
        the rule was present."""
        return self._rules.remove(rule)

    def replace(self, old: FixingRule, new: FixingRule) -> List[Conflict]:
        """Atomically swap *old* for *new* if consistency is kept.

        On conflict the set is left exactly as before (including
        *old*) and the witnesses are returned.
        """
        if old not in self._rules:
            from ..errors import RuleError
            raise RuleError("rule %s not in rule set" % old.name)
        self._rules.remove(old)
        conflicts = self.conflicts_with(new)
        if conflicts:
            self._rules.add(old)  # roll back
            return conflicts
        self._rules.add(new)
        return []

    def extend(self, rules: Iterable[FixingRule]
               ) -> List[FixingRule]:
        """Add many rules, skipping the conflicting ones.

        Returns the rules that were *rejected*, in input order —
        first-come-first-kept semantics for bulk imports.
        """
        rejected: List[FixingRule] = []
        for rule in rules:
            if self.try_add(rule):
                rejected.append(rule)
        return rejected
