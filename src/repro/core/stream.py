"""Streaming / monitoring repair API.

The editing-rules line of work [Fan et al., VLDBJ 2012] frames repair
as *data monitoring*: tuples are certified as they arrive, before
entering the database.  Fixing rules suit that deployment even better
— no user is needed per tuple — so this module packages lRepair for
tuple-at-a-time use:

* :class:`RepairSession` holds the immutable
  :class:`~repro.core.indexes.InvertedIndex` (built once) and a
  reusable counter block, and exposes :meth:`repair_row` /
  :meth:`repair_many`;
* :func:`repair_stream` is the generator form for pipeline code.

A session also accumulates the same aggregate statistics as
:class:`~repro.core.repair.TableRepairReport`, so a long-running
monitor can answer "which rules have been firing?" at any point.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator

from ..errors import InconsistentRulesError
from ..relational import Row
from .consistency import find_conflicts
from .indexes import HashCounters, InvertedIndex
from .repair import RepairResult, RuleInput, _as_rule_list, fast_repair


class RepairSession:
    """A long-lived lRepair instance for tuple-at-a-time repair.

    Parameters
    ----------
    rules:
        The rule set Σ; validated for consistency up front (a monitor
        feeding production writes must never depend on arrival order),
        unless ``check_consistency=False``.
    """

    def __init__(self, rules: RuleInput, check_consistency: bool = True):
        rule_list = _as_rule_list(rules)
        if check_consistency:
            conflicts = find_conflicts(rule_list, first_only=True)
            if conflicts:
                raise InconsistentRulesError(
                    "refusing to open a repair session on inconsistent "
                    "rules: %s" % conflicts[0].describe(), conflicts)
        self._rules = rule_list
        self._index = InvertedIndex(rule_list)
        self._counters = HashCounters(self._index)
        #: tuples seen / tuples changed / cells rewritten so far
        self.rows_seen = 0
        self.rows_changed = 0
        self.cells_changed = 0
        self._by_rule: Dict[str, int] = {}

    def repair_row(self, row: Row) -> RepairResult:
        """Repair one tuple; the input row is not mutated."""
        result = fast_repair(row, self._rules, index=self._index,
                             counters=self._counters)
        self.rows_seen += 1
        if result.changed:
            self.rows_changed += 1
            self.cells_changed += len(result.applied)
            for fix in result.applied:
                self._by_rule[fix.rule.name] = (
                    self._by_rule.get(fix.rule.name, 0) + 1)
        return result

    def repair_many(self, rows: Iterable[Row]) -> Iterator[RepairResult]:
        """Repair a stream of tuples lazily, in arrival order."""
        for row in rows:
            yield self.repair_row(row)

    def applications_by_rule(self) -> Dict[str, int]:
        """Cells corrected per rule name since the session opened."""
        return dict(self._by_rule)

    def stats(self) -> Dict[str, int]:
        """Aggregate counters for monitoring dashboards."""
        return {
            "rows_seen": self.rows_seen,
            "rows_changed": self.rows_changed,
            "cells_changed": self.cells_changed,
            "rules": len(self._rules),
        }

    def __repr__(self) -> str:
        return ("RepairSession(%d rules, %d rows seen, %d cells changed)"
                % (len(self._rules), self.rows_seen, self.cells_changed))


def repair_stream(rows: Iterable[Row], rules: RuleInput,
                  check_consistency: bool = True) -> Iterator[RepairResult]:
    """Generator form: yield a :class:`RepairResult` per incoming row.

    Sugar over :class:`RepairSession` for pipeline code that does not
    need the session statistics.
    """
    session = RepairSession(rules, check_consistency=check_consistency)
    return session.repair_many(rows)


def repair_csv_file(input_path, rules: RuleInput, output_path,
                    check_consistency: bool = True) -> RepairSession:
    """Repair a CSV file row by row, in constant memory.

    Tuple-level repair needs no cross-row state, so arbitrarily large
    files stream through one :class:`RepairSession`: rows are read,
    repaired, and written without ever materializing a table.  The
    rules' schema defines the expected header.  Returns the session so
    callers can inspect the accumulated statistics.
    """
    import csv as _csv
    from ..relational.csvio import iter_csv_rows
    from .ruleset import RuleSet

    if isinstance(rules, RuleSet):
        schema = rules.schema
    else:
        # Derive the schema from the first rule's validation target is
        # not possible for plain sequences; require a RuleSet.
        raise TypeError("repair_csv_file needs a RuleSet (it defines "
                        "the expected CSV schema)")
    session = RepairSession(rules, check_consistency=check_consistency)
    with open(output_path, "w", newline="", encoding="utf-8") as handle:
        writer = _csv.writer(handle)
        writer.writerow(schema.attribute_names)
        for row in iter_csv_rows(input_path, schema):
            writer.writerow(session.repair_row(row).row.values)
    return session
