"""Streaming / monitoring repair API.

The editing-rules line of work [Fan et al., VLDBJ 2012] frames repair
as *data monitoring*: tuples are certified as they arrive, before
entering the database.  Fixing rules suit that deployment even better
— no user is needed per tuple — so this module packages lRepair for
tuple-at-a-time use:

* :class:`RepairSession` holds the immutable
  :class:`~repro.core.engine.CompiledRuleSet` (Σ compiled once, the
  same engine every other driver runs) and exposes :meth:`repair_row`
  / :meth:`repair_many`;
* :func:`repair_stream` is the generator form for pipeline code;
* :func:`repair_csv_file` streams a file through a session in constant
  memory.

A session also accumulates the same aggregate statistics as
:class:`~repro.core.repair.TableRepairReport`, so a long-running
monitor can answer "which rules have been firing?" at any point.

Production hardening (see :mod:`repro.core.pipeline`) rides on three
knobs:

* ``on_error`` — the :data:`~repro.errors.STRICT` /
  :data:`~repro.errors.SKIP` / :data:`~repro.errors.QUARANTINE` policy
  for rows that fail to parse or repair; failures become
  :class:`~repro.errors.RowError` records counted in :meth:`stats`
  (``rows_failed`` / ``rows_quarantined`` / ``errors_by_type``).
* ``on_inconsistent`` — ``"raise"`` (default: refuse service on an
  inconsistent Σ) or ``"degrade"``: run the Section 5.3 resolution
  workflow, serve the maximal consistent subset, and surface the
  shelved rules in :meth:`stats` and a :class:`RuntimeWarning`.
* ``checkpoint_path`` / ``resume`` on :func:`repair_csv_file` —
  crash-safe, exactly-once file repair: output is written to a
  temporary file and atomically renamed, and an fsynced checkpoint
  sidecar lets a killed run restart without redoing or duplicating
  work.
"""

from __future__ import annotations

import io
import os
import tempfile
import warnings
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from ..errors import (QUARANTINE, SKIP, STRICT, CheckpointError,
                      InconsistentRulesError, PipelineError, RowError,
                      validate_error_policy)
from ..relational import Row, Schema
from .consistency import find_conflicts_cached
from .engine import CompiledRuleSet, compile_for_schema
from .pipeline import Checkpoint, FaultInjected, QuarantineWriter, fsync_handle
from .repair import RepairResult, RuleInput, _as_rule_list

ON_INCONSISTENT_RAISE = "raise"
ON_INCONSISTENT_DEGRADE = "degrade"
_ON_INCONSISTENT = (ON_INCONSISTENT_RAISE, ON_INCONSISTENT_DEGRADE)


class RepairSession:
    """A long-lived lRepair instance for tuple-at-a-time repair.

    Parameters
    ----------
    rules:
        The rule set Σ; validated for consistency up front (a monitor
        feeding production writes must never depend on arrival order),
        unless ``check_consistency=False``.
    on_inconsistent:
        ``"raise"`` (default) refuses to open the session on an
        inconsistent Σ.  ``"degrade"`` instead runs the Section 5.3
        resolution workflow (:func:`repro.core.resolution.ensure_consistent`)
        and serves the maximal consistent subset; the shelved rules are
        listed in :attr:`shelved_rules` / :meth:`stats` and announced
        via a :class:`RuntimeWarning`.
    on_error:
        Error policy for :meth:`try_repair_row`: ``strict`` re-raises
        repair-time exceptions, ``skip`` / ``quarantine`` capture them
        as :class:`~repro.errors.RowError` records (``quarantine``
        additionally forwards them to :attr:`quarantine_sink`).
    quarantine_sink:
        Optional ``RowError -> None`` callable receiving quarantined
        records (typically :meth:`QuarantineWriter.write
        <repro.core.pipeline.QuarantineWriter>`).
    """

    def __init__(self, rules: RuleInput, check_consistency: bool = True,
                 on_inconsistent: str = ON_INCONSISTENT_RAISE,
                 on_error: str = STRICT,
                 quarantine_sink: Optional[Callable[[RowError], None]] = None):
        validate_error_policy(on_error)
        if on_inconsistent not in _ON_INCONSISTENT:
            raise ValueError("unknown on_inconsistent mode %r; expected "
                             "one of %s" % (on_inconsistent,
                                            ", ".join(_ON_INCONSISTENT)))
        rule_list = _as_rule_list(rules)
        #: whether Σ was inconsistent and a consistent subset is served
        self.degraded = False
        #: names of rules shelved or trimmed by degraded-mode resolution
        self.shelved_rules: List[str] = []
        #: the :class:`~repro.core.resolution.Revision` records behind it
        self.revisions = []
        if check_consistency:
            conflicts = find_conflicts_cached(rule_list, first_only=True)
            if conflicts:
                if on_inconsistent == ON_INCONSISTENT_DEGRADE:
                    rule_list = self._degrade(rules, rule_list)
                else:
                    raise InconsistentRulesError(
                        "refusing to open a repair session on inconsistent "
                        "rules: %s" % conflicts[0].describe(), conflicts)
        self._rules = rule_list
        # Compile Σ eagerly when a schema is at hand (a RuleSet input),
        # lazily from the first row's schema otherwise — plain rule
        # sequences carry no schema of their own.
        self._compiled: Optional[CompiledRuleSet] = None
        from .ruleset import RuleSet
        if isinstance(rules, RuleSet) and not self.degraded:
            self._compiled = compile_for_schema(rules.schema, rules)
        self.on_error = on_error
        self.quarantine_sink = quarantine_sink
        #: tuples seen / tuples changed / cells rewritten so far
        self.rows_seen = 0
        self.rows_changed = 0
        self.cells_changed = 0
        #: rows dropped under a non-strict error policy
        self.rows_failed = 0
        #: subset of the failed rows written to the dead-letter sink
        self.rows_quarantined = 0
        #: failure counts keyed by exception class name
        self.errors_by_type: Dict[str, int] = {}
        #: after a parallel ``repair_csv_file`` run, the supervision
        #: counters of that run (retries, deadline hits, workers
        #: respawned, rows isolated, degradations) as a plain dict;
        #: ``None`` for serial runs.  Deliberately *not* part of
        #: :meth:`stats`: serial and parallel runs of the same input
        #: must report identical session statistics.
        self.supervisor_stats: Optional[Dict[str, int]] = None
        self._by_rule: Dict[str, int] = {}

    def _degrade(self, rules: RuleInput, rule_list):
        """Section 5.3 fallback: resolve Σ to a consistent subset."""
        from .resolution import ensure_consistent
        from .ruleset import RuleSet
        if isinstance(rules, RuleSet):
            ruleset = rules
        else:
            # Plain sequences carry no schema; synthesize one from the
            # attributes the rules actually reference.
            attrs: List[str] = []
            for rule in rule_list:
                for attr in tuple(rule.evidence) + (rule.attribute,):
                    if attr not in attrs:
                        attrs.append(attr)
            ruleset = RuleSet(Schema("degraded", attrs), rule_list)
        log = ensure_consistent(ruleset)
        self.degraded = True
        self.revisions = list(log.revisions)
        self.shelved_rules = sorted({rev.rule.name for rev in log.revisions})
        warnings.warn(
            "rule set is inconsistent; degraded mode shelved or trimmed "
            "%d rule(s): %s" % (len(self.shelved_rules),
                                ", ".join(self.shelved_rules)),
            RuntimeWarning, stacklevel=4)
        return log.rules.rules()

    def _engine_for(self, schema: Schema) -> CompiledRuleSet:
        """The session's compiled engine, built on first use for
        sessions opened over a plain (schema-less) rule sequence."""
        compiled = self._compiled
        if compiled is None or not compiled.compatible_with(schema):
            compiled = CompiledRuleSet(schema, self._rules)
            self._compiled = compiled
        return compiled

    def repair_row(self, row: Row) -> RepairResult:
        """Repair one tuple; the input row is not mutated."""
        result = self._engine_for(row.schema).repair_row(row)
        self.rows_seen += 1
        if result.changed:
            self.rows_changed += 1
            self.cells_changed += len(result.applied)
            for fix in result.applied:
                self._by_rule[fix.rule.name] = (
                    self._by_rule.get(fix.rule.name, 0) + 1)
        return result

    def try_repair_row(self, row: Row, line_no: Optional[int] = None,
                       source: str = "<stream>") -> Optional[RepairResult]:
        """:meth:`repair_row` under the session's error policy.

        Returns ``None`` (after :meth:`record_error`) when the repair
        raises and the policy is ``skip`` or ``quarantine``.
        """
        try:
            return self.repair_row(row)
        except FaultInjected:
            raise  # simulated kill: never absorbed by a policy
        except Exception as exc:
            if self.on_error == STRICT:
                raise
            self.record_error(RowError(str(source), line_no,
                                       tuple(row.values),
                                       type(exc).__name__, str(exc)))
            return None

    def record_error(self, error: RowError) -> None:
        """Count a failed row; under ``quarantine``, forward it to the sink."""
        self.rows_failed += 1
        self.errors_by_type[error.error_type] = (
            self.errors_by_type.get(error.error_type, 0) + 1)
        if self.on_error == QUARANTINE and self.quarantine_sink is not None:
            self.quarantine_sink(error)
            self.rows_quarantined += 1

    def repair_many(self, rows: Iterable[Row]) -> Iterator[RepairResult]:
        """Repair a stream of tuples lazily, in arrival order."""
        for row in rows:
            yield self.repair_row(row)

    def applications_by_rule(self) -> Dict[str, int]:
        """Cells corrected per rule name since the session opened."""
        return dict(self._by_rule)

    def stats(self) -> Dict[str, object]:
        """Aggregate counters for monitoring dashboards.

        ``errors_by_type`` lets a monitor alert on error-rate spikes by
        cause; ``degraded`` / ``rules_shelved`` expose degraded-mode
        operation.
        """
        return {
            "rows_seen": self.rows_seen,
            "rows_changed": self.rows_changed,
            "cells_changed": self.cells_changed,
            "rules": len(self._rules),
            "rows_failed": self.rows_failed,
            "rows_quarantined": self.rows_quarantined,
            "errors_by_type": dict(self.errors_by_type),
            "degraded": self.degraded,
            "rules_shelved": len(self.shelved_rules),
        }

    def _restore_counters(self, checkpoint: Checkpoint) -> None:
        """Resume support: reload the counters a checkpoint recorded."""
        stats = checkpoint.stats
        self.rows_seen = int(stats.get("rows_seen", 0))
        self.rows_changed = int(stats.get("rows_changed", 0))
        self.cells_changed = int(stats.get("cells_changed", 0))
        self.rows_failed = int(stats.get("rows_failed", 0))
        self.rows_quarantined = int(stats.get("rows_quarantined", 0))
        self.errors_by_type = dict(checkpoint.errors_by_type)
        self._by_rule = dict(checkpoint.by_rule)

    def __repr__(self) -> str:
        return ("RepairSession(%d rules, %d rows seen, %d cells changed)"
                % (len(self._rules), self.rows_seen, self.cells_changed))


def repair_stream(rows: Iterable[Row], rules: RuleInput,
                  check_consistency: bool = True,
                  on_inconsistent: str = ON_INCONSISTENT_RAISE,
                  on_error: str = STRICT,
                  error_sink: Optional[Callable[[RowError], None]] = None
                  ) -> Iterator[RepairResult]:
    """Generator form: yield a :class:`RepairResult` per incoming row.

    Sugar over :class:`RepairSession` for pipeline code that does not
    need the session statistics.  Under a non-strict *on_error* policy,
    rows whose repair raises are dropped (reported to *error_sink*
    when the policy is ``quarantine``); the session is created — and Σ
    validated — eagerly, before the first row is pulled.
    """
    session = RepairSession(rules, check_consistency=check_consistency,
                            on_inconsistent=on_inconsistent,
                            on_error=on_error, quarantine_sink=error_sink)
    if on_error == STRICT:
        return session.repair_many(rows)

    def generate() -> Iterator[RepairResult]:
        for position, row in enumerate(rows):
            result = session.try_repair_row(row, line_no=position)
            if result is not None:
                yield result
    return generate()


def _columnar_chunk_stream(schema, rules, chunks):
    """In-process chunk runner for serial ``backend='columnar'``
    streaming: dictionary-encode each payload chunk, detect candidates
    with the bulk kernel, and emit the same encoded outcomes (including
    per-row error markers) as a pool worker would — so the merge loop
    cannot tell which side executed a chunk."""
    from .columnar import ColumnarKernel, ColumnarTable
    from .engine import compile_for_schema
    from .supervisor import ERROR_MARK
    compiled = compile_for_schema(schema, rules)
    kernel = ColumnarKernel(compiled)
    repair_values = compiled.repair_values
    for payload in chunks:
        out = [None] * len(payload)
        ctable = ColumnarTable.from_rows(schema, payload)
        for i in kernel.candidate_indices(ctable):
            try:
                out[i] = repair_values(payload[i])
            except Exception as exc:
                out[i] = (ERROR_MARK, type(exc).__name__, str(exc))
        yield out


def repair_csv_file(input_path, rules: RuleInput, output_path,
                    check_consistency: bool = True,
                    on_error: str = STRICT,
                    quarantine_path=None,
                    checkpoint_path=None,
                    checkpoint_interval: int = 1000,
                    resume: bool = False,
                    on_inconsistent: str = ON_INCONSISTENT_RAISE,
                    rows=None,
                    workers: int = 1,
                    chunk_size: Optional[int] = None,
                    supervisor=None,
                    fault_plan=None,
                    force_workers: bool = False,
                    backend: str = "auto") -> RepairSession:
    """Repair a CSV file row by row, in constant memory, crash-safely.

    Tuple-level repair needs no cross-row state, so arbitrarily large
    files stream through one :class:`RepairSession`: rows are read,
    repaired, and written without ever materializing a table.  The
    rules' schema defines the expected header.  Returns the session so
    callers can inspect the accumulated statistics.

    Fault tolerance:

    * Output is always written to a temporary file in the destination
      directory and atomically renamed (``os.replace``) on success — a
      failed run never leaves a half-written file that looks complete.
    * *on_error* (``strict`` / ``skip`` / ``quarantine``) governs
      malformed and unrepairable rows; ``quarantine`` writes them to
      the dead-letter JSONL file *quarantine_path* (default:
      ``<output>.quarantine.jsonl``) with line-number provenance for
      later replay via
      :func:`~repro.core.pipeline.replay_quarantine`.
    * With *checkpoint_path*, an fsynced
      :class:`~repro.core.pipeline.Checkpoint` sidecar is committed
      every *checkpoint_interval* rows.  A later call with
      ``resume=True`` truncates the partial output (and quarantine
      file) back to the last committed byte offsets, skips the already
      committed input lines, and continues — producing output
      byte-identical to an uninterrupted run, with no duplicated or
      lost rows.  The sidecar is removed on success.

    *rows* is an advanced hook: a pre-built iterable of
    ``(line_no, Row | RowError)`` pairs replacing the CSV read (the
    fault-injection tests wrap the default reader in a
    :class:`~repro.core.pipeline.FaultInjector`).

    Parallelism: with ``workers > 1`` (on a platform with ``fork``),
    parseable rows are sharded into chunks of *chunk_size* and
    repaired by a :class:`~repro.core.parallel.ParallelRepairExecutor`;
    results are merged back in input order, so the output file is
    byte-identical to a serial run and the session counters are the
    sums over all workers.  Checkpoints are committed at chunk
    boundaries (the commit token is still the input line number, so a
    parallel run can be resumed serially and vice versa).  The one
    behavioral difference: a repair-time exception under
    ``on_error='strict'`` surfaces as
    :class:`~repro.errors.PipelineError` naming the original exception
    type, because the original object cannot cross the process
    boundary.  ``workers=None`` means one worker per CPU; platforms
    without ``fork`` silently use the serial path.  A ``workers > 1``
    request on a machine with fewer than two *usable* CPUs warns and
    runs serial — multiprocessing is a measured net slowdown there —
    unless ``force_workers=True`` (see
    :func:`~repro.core.parallel.resolve_workers`).

    Supervision: parallel chunks run under a
    :class:`~repro.core.supervisor.ChunkSupervisor` — *supervisor* (a
    :class:`~repro.core.supervisor.SupervisorConfig`, default
    ``None`` = defaults) sets the per-chunk deadline, retry budget,
    backoff, and whether an unrecoverable pool degrades to in-process
    serial execution.  A poison row that repeatedly kills its worker
    is isolated by bisection and fed to the *on_error* policy as a
    :class:`~repro.errors.RowError` with ``error_type``
    ``"WorkerCrashError"`` (quarantined under ``quarantine``, a
    :class:`~repro.errors.PipelineError` under ``strict``).  The
    run's supervision counters are exposed afterwards as
    ``session.supervisor_stats``.  *fault_plan* (a
    :class:`~repro.core.supervisor.WorkerFaultPlan`) arms worker-side
    chaos for the fault-injection tests.

    *backend* (``"auto"`` / ``"row"`` / ``"columnar"``, see
    :func:`~repro.core.repair.repair_table`) picks the repair engine.
    ``"columnar"`` batches parseable rows into dictionary-encoded
    chunks and repairs them through the bulk engine even serially —
    same output bytes, with checkpoints still committed at chunk
    boundaries; under ``on_error='strict'`` a repair-time exception
    surfaces as :class:`~repro.errors.PipelineError` naming the
    original type, exactly like the parallel path (the chunked
    execution shares that semantic).  On the parallel path the
    backend picks the chunk transport: columnar chunks cross to
    workers as pickle-free shared-memory flat buffers.
    """
    import csv as _csv
    from ..relational.csvio import iter_csv_records
    from .ruleset import RuleSet

    if not isinstance(rules, RuleSet):
        raise TypeError(
            "repair_csv_file(rules=...) needs a RuleSet — it defines the "
            "expected CSV schema — but got %s; wrap plain rule sequences "
            "with RuleSet(schema, rules) first"
            % type(rules).__name__)
    validate_error_policy(on_error)
    from .repair import VALID_BACKENDS
    if backend not in VALID_BACKENDS:
        raise ValueError(
            "unknown backend %r; valid choices are %s"
            % (backend, ", ".join(repr(b) for b in VALID_BACKENDS)))
    if checkpoint_interval < 1:
        raise ValueError("checkpoint_interval must be >= 1, got %d"
                         % checkpoint_interval)
    if resume and checkpoint_path is None:
        raise ValueError("resume=True requires checkpoint_path")
    if quarantine_path is not None and on_error != QUARANTINE:
        raise ValueError("quarantine_path is only meaningful with "
                         "on_error='quarantine'")
    schema = rules.schema
    out_path = os.fspath(output_path)
    if on_error == QUARANTINE and quarantine_path is None:
        quarantine_path = out_path + ".quarantine.jsonl"

    checkpointing = checkpoint_path is not None
    checkpoint = None
    if resume and os.path.exists(checkpoint_path):
        checkpoint = Checkpoint.load(checkpoint_path)
        if checkpoint.input_path != os.fspath(input_path):
            raise CheckpointError(
                "checkpoint %s was written for input %r, not %r"
                % (checkpoint_path, checkpoint.input_path,
                   os.fspath(input_path)))

    session = RepairSession(rules, check_consistency=check_consistency,
                            on_inconsistent=on_inconsistent,
                            on_error=on_error)

    if checkpointing:
        # Deterministic name: resume must find the same partial file.
        part_path = out_path + ".part"
    else:
        fd, part_path = tempfile.mkstemp(
            dir=os.path.dirname(out_path) or ".",
            prefix=os.path.basename(out_path) + ".", suffix=".tmp")
        os.close(fd)

    quarantine = None
    raw = None
    handle = None
    completed = False
    try:
        if checkpoint is not None:
            if not os.path.exists(part_path):
                raise CheckpointError(
                    "checkpoint %s exists but the partial output %s is "
                    "missing" % (checkpoint_path, part_path))
            raw = open(part_path, "r+b")
            raw.truncate(checkpoint.output_offset)
            raw.seek(checkpoint.output_offset)
            session._restore_counters(checkpoint)
        else:
            raw = open(part_path, "wb")
        # Binary underneath, text on top: handle.flush() + raw.tell()
        # yields exact byte offsets for the checkpoint commit tokens.
        handle = io.TextIOWrapper(raw, encoding="utf-8", newline="")
        writer = _csv.writer(handle)
        if on_error == QUARANTINE:
            quarantine = QuarantineWriter(
                quarantine_path,
                resume_offset=(checkpoint.quarantine_offset
                               if checkpoint is not None else None))
            session.quarantine_sink = quarantine.write
        if checkpoint is None:
            writer.writerow(schema.attribute_names)

        last_line = checkpoint.input_line if checkpoint is not None else 1
        resume_line = last_line
        since_commit = 0

        def commit() -> None:
            handle.flush()
            os.fsync(raw.fileno())
            Checkpoint(
                input_path=os.fspath(input_path),
                input_line=last_line,
                output_offset=raw.tell(),
                quarantine_offset=(quarantine.sync()
                                   if quarantine is not None else 0),
                stats={
                    "rows_seen": session.rows_seen,
                    "rows_changed": session.rows_changed,
                    "cells_changed": session.cells_changed,
                    "rows_failed": session.rows_failed,
                    "rows_quarantined": session.rows_quarantined,
                },
                by_rule=session.applications_by_rule(),
                errors_by_type=dict(session.errors_by_type),
            ).save(checkpoint_path)

        if rows is None:
            rows = iter_csv_records(input_path, schema, on_error=on_error)

        from .parallel import (DEFAULT_CHUNK_SIZE, ParallelRepairExecutor,
                               fork_available, is_error_marker,
                               resolve_workers, shm_available)
        effective_workers = resolve_workers(workers, force_workers)
        use_parallel = effective_workers > 1 and fork_available()
        if use_parallel or backend == "columnar":
            shard = chunk_size if chunk_size is not None else min(
                DEFAULT_CHUNK_SIZE, max(1, checkpoint_interval))
            if shard < 1:
                raise ValueError("chunk_size must be >= 1, got %d" % shard)
            source = os.fspath(input_path)
            rule_names = [rule.name for rule in session._rules]
            pending_records = []

            def shard_source():
                """Group input records into chunks; ship parseable rows.

                Appends each chunk's full ``(line_no, item)`` record
                list to *pending_records* right before yielding its
                repairable payload, so the consumer below can re-merge
                errors and results in exact input order.
                """
                records, payload = [], []
                for line_no, item in rows:
                    if line_no <= resume_line:
                        continue  # committed by the interrupted run
                    records.append((line_no, item))
                    if not isinstance(item, RowError):
                        payload.append(list(item.values))
                    if len(records) >= shard:
                        pending_records.append(records)
                        yield payload
                        records, payload = [], []
                if records:
                    pending_records.append(records)
                    yield payload

            def merge_outcomes(outcome_stream):
                nonlocal last_line, since_commit
                for outcomes in outcome_stream:
                    records = pending_records.pop(0)
                    outcome_iter = iter(outcomes)
                    for line_no, item in records:
                        if isinstance(item, RowError):
                            session.record_error(item)
                        else:
                            encoded = next(outcome_iter)
                            if is_error_marker(encoded):
                                _mark, error_type, message = encoded
                                error = RowError(source, line_no,
                                                 tuple(item.values),
                                                 error_type, message)
                                if on_error == STRICT:
                                    raise PipelineError(
                                        "row at line %d failed in a repair "
                                        "worker: %s: %s"
                                        % (line_no, error_type, message))
                                session.record_error(error)
                            elif encoded is None:
                                session.rows_seen += 1
                                writer.writerow(item.values)
                            else:
                                new_values, applied = encoded
                                session.rows_seen += 1
                                session.rows_changed += 1
                                session.cells_changed += len(applied)
                                for rule_id, _old in applied:
                                    name = rule_names[rule_id]
                                    session._by_rule[name] = (
                                        session._by_rule.get(name, 0) + 1)
                                writer.writerow(new_values)
                        last_line = line_no
                        since_commit += 1
                    if checkpointing and since_commit >= checkpoint_interval:
                        commit()
                        since_commit = 0

            if use_parallel:
                if backend == "row":
                    transport = "pickle"
                elif backend == "columnar" and shm_available():
                    transport = "shm"
                else:
                    transport = "auto"
                # Σ was already validated when the session opened (or
                # its degraded subset is consistent by construction),
                # so the workers inherit the verdict instead of
                # re-checking.
                with ParallelRepairExecutor(
                        schema, session._rules, effective_workers,
                        verified_consistent=check_consistency,
                        supervisor=supervisor,
                        fault_plan=fault_plan,
                        transport=transport) as executor:
                    merge_outcomes(executor.map_chunks(shard_source()))
                    session.supervisor_stats = executor.stats.snapshot()
            else:
                # Serial columnar: the same chunked merge loop, with
                # the bulk engine repairing each chunk in-process.
                merge_outcomes(_columnar_chunk_stream(
                    schema, session._rules, shard_source()))
        else:
            for line_no, item in rows:
                if line_no <= resume_line:
                    continue  # committed by the interrupted run
                if isinstance(item, RowError):
                    session.record_error(item)
                else:
                    result = session.try_repair_row(
                        item, line_no=line_no, source=os.fspath(input_path))
                    if result is not None:
                        writer.writerow(result.row.values)
                last_line = line_no
                since_commit += 1
                if checkpointing and since_commit >= checkpoint_interval:
                    commit()
                    since_commit = 0

        fsync_handle(handle)
        if quarantine is not None:
            quarantine.sync()
        completed = True
    finally:
        if quarantine is not None:
            quarantine.close()
        if handle is not None:
            handle.close()  # also closes raw
        elif raw is not None:
            raw.close()
        # On failure: keep the partial output + checkpoint when
        # checkpointing (resume needs them); otherwise clean up so no
        # output ever exists for a failed run.
        if not completed and not checkpointing and os.path.exists(part_path):
            os.unlink(part_path)
    from ..durability.faults import durable_replace, fsync_dir
    durable_replace(part_path, out_path, "output.rename")
    # fsync the parent directory so the publish rename itself survives
    # power loss (the file contents were fsynced above)
    fsync_dir(os.path.dirname(os.path.abspath(out_path)), "output.dirsync")
    if checkpointing and os.path.exists(checkpoint_path):
        os.unlink(checkpoint_path)
    return session


# -- delta-aware continuous mode ---------------------------------------------

def repair_delta_stream(events, rules=None, *, session=None,
                        log_path=None, check_consistency: bool = True,
                        on_error: str = STRICT):
    """Drive a delta session from a stream of change events.

    The continuous counterpart of :func:`repair_stream`: instead of
    repairing each incoming row once and forgetting it, events mutate
    a long-lived :class:`~repro.core.delta.DeltaRepairSession` —
    upserts, deletes, rule additions and removals — and each event
    re-repairs only its affected slice, appending every cell change
    to the session's correction log.

    *events* yields dicts (see
    :meth:`~repro.core.delta.DeltaRepairSession.apply_event` for the
    accepted shapes).  Pass *rules* to start a fresh empty session, or
    *session* to continue an existing one.  Yields ``(event, outcome)``
    pairs where *outcome* is a
    :class:`~repro.core.delta.DeltaOutcome` — or, with
    ``on_error="skip"``, ``(event, exception)`` for events that failed
    (malformed payloads, inconsistent rule deltas) while the stream
    keeps going; the default ``"strict"`` re-raises.
    """
    from ..errors import ReproError
    from .delta import DeltaRepairSession
    if session is None:
        if rules is None:
            raise ValueError("repair_delta_stream needs rules= or session=")
        session = DeltaRepairSession(rules, log_path=log_path,
                                     check_consistency=check_consistency)
    if on_error not in (STRICT, SKIP):
        raise ValueError("on_error must be %r or %r" % (STRICT, SKIP))
    for event in events:
        try:
            outcome = session.apply_event(event)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            if on_error == STRICT:
                raise
            yield event, exc
            continue
        yield event, outcome
