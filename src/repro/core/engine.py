"""The compiled rule engine — the single hot path for every repair driver.

``BENCH_parallel.json`` exposed that the positional batch kernel added
for the parallel executor was ~9x faster than the per-row
``fast_repair`` loop *before* any parallelism: the win came from
compiling Σ once — resolving attribute names to schema positions,
interning the rule constants, and pre-building the inverted evidence
lists — and then chasing raw value lists instead of ``Row`` objects.
This module promotes that kernel to the one execution engine behind
every repair path:

* :class:`CompiledRuleSet` — Σ compiled against a schema: interned
  constants, rules flattened into positional tuples, the inverted
  lists of Section 6.2 re-keyed by column index, and a content
  :attr:`~CompiledRuleSet.fingerprint` identifying the compilation
  across processes.  ``fast_repair``, the serial ``repair_table``
  loop, :class:`~repro.core.stream.RepairSession`, ``repair_csv_file``
  and every parallel pool worker all execute
  :meth:`~CompiledRuleSet.repair_values` (or its ``Row`` adapter),
  so serial and parallel literally share one code path and the
  differential harness collapses to one equivalence class.
* :func:`compile_ruleset` / :func:`compile_for_schema` — compilation
  entry points with memoization: a :class:`~repro.core.ruleset.RuleSet`
  caches its compiled form (invalidated on mutation), so repeated
  repairs against the same Σ pay the ``O(size(Σ))`` compile once.
* :func:`rules_fingerprint` — a stable (process-independent) content
  hash of Σ, keying the consistency-verdict cache in
  :mod:`repro.core.consistency` and the worker init blobs in
  :mod:`repro.core.parallel`.

The chase itself follows Fig. 7 line by line and seeds/drains the
frontier Γ in exactly the order the historical ``fast_repair`` did, so
results are identical even on an (erroneously) inconsistent Σ, where
order matters.  Instrumented rule sets — rules overriding ``matches``
et al., as built by :func:`repro.core.instrumentation.counting_rules` —
are detected at compile time and executed through a ``Row``-level
variant of the same frontier discipline, so the examination accounting
the complexity tests rely on keeps its historical meaning.

Engine activity (compilations, cache hits, rows repaired) is counted
in :data:`repro.core.instrumentation.ENGINE_STATS`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import (Dict, FrozenSet, List, Optional, Sequence, Tuple,
                    TYPE_CHECKING, Union)

from ..relational import Row, Schema
from .instrumentation import ENGINE_STATS
from .matching import properly_applicable
from .rule import FixingRule
from .ruleset import RuleSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .repair import RepairResult

__all__ = [
    "CompiledRuleSet",
    "compile_ruleset",
    "compile_for_schema",
    "compile_cached",
    "clear_compiled_cache",
    "rules_fingerprint",
]

RuleInput = Union[RuleSet, Sequence[FixingRule]]

try:
    from sys import intern as _intern
except ImportError:  # pragma: no cover - sys.intern exists on 3.x
    def _intern(s):
        return s


def _as_rule_list(rules: RuleInput) -> List[FixingRule]:
    if isinstance(rules, RuleSet):
        return rules.rules()
    return list(rules)


def _is_instrumented(rule: FixingRule) -> bool:
    """Does *rule* override the match/apply primitives?

    Instrumentation wrappers (:class:`~repro.core.instrumentation.
    CountingRule`) count ``matches`` examinations; the positional hot
    loop never calls ``matches``, so such rules must run through the
    ``Row``-level executor to keep their accounting meaningful.
    """
    cls = type(rule)
    return (cls.matches is not FixingRule.matches
            or cls.evidence_matches is not FixingRule.evidence_matches
            or cls.apply_in_place is not FixingRule.apply_in_place)


def rules_fingerprint(rules: RuleInput) -> str:
    """A stable content hash of Σ (rule order included).

    Independent of process, ``PYTHONHASHSEED``, and rule display
    names: two rule lists with the same evidence patterns, corrected
    attributes, negative-pattern sets, and facts — in the same order —
    hash identically everywhere.  Keys the consistency-verdict cache
    and identifies Σ in parallel worker init blobs.
    """
    digest = hashlib.sha256()
    for rule in _as_rule_list(rules):
        digest.update(repr((rule._evidence_items, rule.attribute,
                            tuple(sorted(rule.negatives)),
                            rule.fact)).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class CompiledRuleSet:
    """Σ compiled against a schema for positional, allocation-light
    repair.

    Built once per ``(schema, Σ)`` pair; all rule state is resolved to
    schema *positions* and interned constants:

    * ``_lists_by_pos[p]`` maps a cell value at position ``p`` to the
      ids of rules whose evidence pattern constrains that attribute to
      that value (the inverted lists of Section 6.2, re-keyed
      positionally);
    * evidence counters live in a per-row dict keyed by rule id, so a
      row only pays for the rules its cells actually hit;
    * the rule constants are ``sys.intern``-ed so the dict probes and
      equality checks in the hot loop hit pointer-equal strings for
      values that recur across rules.

    Thread-compatible after construction: compilation never mutates,
    so one compiled set serves concurrent repairs (each call carries
    its own counters).
    """

    __slots__ = ("schema", "rules", "_nattrs", "_lists_by_pos", "_ev_size",
                 "_b_pos", "_negatives", "_fact", "_touched", "_ev_pos",
                 "_touched_pos", "_instrumented", "_fingerprint")

    def __init__(self, schema: Schema, rules: RuleInput):
        rule_list = _as_rule_list(rules)
        for rule in rule_list:
            rule.validate(schema)
        self.schema = schema
        self.rules: Tuple[FixingRule, ...] = tuple(rule_list)
        self._nattrs = len(schema)
        self._instrumented = any(_is_instrumented(rule)
                                 for rule in rule_list)
        index_of = schema.index_of
        lists: List[Dict[str, Tuple[int, ...]]] = [
            {} for _ in range(self._nattrs)]
        for rule_id, rule in enumerate(rule_list):
            for attr, value in rule._evidence_items:
                lists[index_of(attr)].setdefault(_intern(value),
                                                 []).append(rule_id)
        for per_pos in lists:
            for value in per_pos:
                per_pos[value] = tuple(per_pos[value])
        self._lists_by_pos = lists
        self._ev_size: Tuple[int, ...] = tuple(
            len(rule.evidence) for rule in rule_list)
        self._b_pos: Tuple[int, ...] = tuple(
            index_of(rule.attribute) for rule in rule_list)
        self._negatives: Tuple[FrozenSet[str], ...] = tuple(
            frozenset(_intern(v) for v in rule.negatives)
            for rule in rule_list)
        self._fact: Tuple[str, ...] = tuple(
            _intern(rule.fact) for rule in rule_list)
        self._touched: Tuple[FrozenSet[str], ...] = tuple(
            rule.touched_attrs for rule in rule_list)
        self._ev_pos: Tuple[Tuple[Tuple[int, str], ...], ...] = tuple(
            tuple((index_of(attr), _intern(value))
                  for attr, value in rule._evidence_items)
            for rule in rule_list)
        self._touched_pos: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(index_of(attr) for attr in rule.touched_attrs)
            for rule in rule_list)
        self._fingerprint: Optional[str] = None
        ENGINE_STATS.rulesets_compiled += 1
        ENGINE_STATS.rules_compiled += len(rule_list)

    # -- identity ------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Content hash of the compiled Σ (see :func:`rules_fingerprint`).

        Computed lazily — the repair hot paths never need it — and
        cached; stable across processes, so a parent and its pool
        workers agree on it without shipping the hash.
        """
        if self._fingerprint is None:
            self._fingerprint = rules_fingerprint(self.rules)
        return self._fingerprint

    @property
    def instrumented(self) -> bool:
        """Does Σ contain rules overriding the match primitives?"""
        return self._instrumented

    def evidence_layout(self) -> Tuple[Tuple[Tuple[Tuple[int, str], ...],
                                             int, FrozenSet[str], str], ...]:
        """Per-rule positional pattern data, in rule-id order.

        Each entry is ``(evidence, b_pos, negatives, fact)`` with
        *evidence* as ``(position, value)`` pairs — the compiled form
        array backends (:mod:`repro.core.columnar`) build their scans
        from, exposed so they need not reach into slots.
        """
        return tuple(
            (self._ev_pos[rule_id], self._b_pos[rule_id],
             self._negatives[rule_id], self._fact[rule_id])
            for rule_id in range(len(self.rules)))

    def compatible_with(self, schema: Schema) -> bool:
        """Is the positional layout valid for rows of *schema*?

        True when *schema* is the compile schema or lists the same
        attribute names in the same order — positions then coincide.
        """
        return (schema is self.schema
                or schema.attribute_names == self.schema.attribute_names)

    # -- execution -----------------------------------------------------------

    def repair_values(self, values: Sequence[str]
                      ) -> Optional[Tuple[List[str],
                                          List[Tuple[int, str]]]]:
        """Repair one tuple given as cell values in schema order.

        Returns ``None`` when no rule fires (the common case — the
        input is not copied), otherwise ``(new_values, applied)`` where
        *applied* lists ``(rule_id, old_value)`` pairs in application
        order.  The input sequence is never mutated.
        """
        if self._instrumented:
            result = self._repair_row_instrumented(
                Row.from_trusted(self.schema, list(values)))
            if not result.applied:
                return None
            pos_of = {id(rule): rule_id
                      for rule_id, rule in enumerate(self.rules)}
            return (list(result.row._cells),
                    [(pos_of[id(fix.rule)], fix.old_value)
                     for fix in result.applied])
        ENGINE_STATS.rows_repaired += 1
        lists_by_pos = self._lists_by_pos
        ev_size = self._ev_size
        counts: Dict[int, int] = {}
        frontier: Optional[List[int]] = None
        for pos in range(self._nattrs):
            hits = lists_by_pos[pos].get(values[pos])
            if hits:
                for rule_id in hits:
                    count = counts.get(rule_id, 0) + 1
                    counts[rule_id] = count
                    if count == ev_size[rule_id]:
                        if frontier is None:
                            frontier = [rule_id]
                        else:
                            frontier.append(rule_id)
        if frontier is None:
            return None
        # The historical fast_repair seeded Γ in ascending rule-id
        # order (a dense counter scan); match it exactly so the chase
        # order — hence the result, even on an inconsistent Σ — is
        # identical across every driver.
        frontier.sort()

        current: List[str] = list(values)
        applied: List[Tuple[int, str]] = []
        assured_positions: set = set()
        in_frontier = set(frontier)
        checked: set = set()
        b_pos = self._b_pos
        negatives = self._negatives
        facts = self._fact
        while frontier:
            rule_id = frontier.pop()
            in_frontier.discard(rule_id)
            checked.add(rule_id)
            target = b_pos[rule_id]
            old = current[target]
            if target in assured_positions or old not in negatives[rule_id]:
                continue  # removed once and for all (Fig. 7, line 16)
            # Evidence re-check: the counter says the pattern matched
            # at completion time, but a later application may have
            # rewritten an evidence cell — properly_applicable() in the
            # Row-level path re-reads the tuple, and so must we.
            ok = True
            for pos, value in self._ev_pos[rule_id]:
                if current[pos] != value:
                    ok = False
                    break
            if not ok:
                continue
            fact = facts[rule_id]
            current[target] = fact
            assured_positions.update(self._touched_pos[rule_id])
            applied.append((rule_id, old))
            hit_lists = lists_by_pos[target]
            hits = hit_lists.get(old)
            if hits:
                for other in hits:
                    counts[other] = counts.get(other, 0) - 1
            hits = hit_lists.get(fact)
            if hits:
                for other in hits:
                    count = counts.get(other, 0) + 1
                    counts[other] = count
                    if (count == ev_size[other] and other not in checked
                            and other not in in_frontier):
                        frontier.append(other)
                        in_frontier.add(other)
        if not applied:
            return None
        return current, applied

    def repair_row(self, row: Row) -> "RepairResult":
        """Repair one :class:`~repro.relational.row.Row`, returning the
        classic :class:`~repro.core.repair.RepairResult` (the input is
        never mutated)."""
        from .repair import RepairResult
        if self._instrumented:
            return self._repair_row_instrumented(row)
        # Copy through the row's own hook first — the historical
        # contract (fast_repair always began with row.copy()) that Row
        # subclasses and the error-policy tests rely on.
        current = row.copy()
        outcome = self.repair_values(current._cells)
        if outcome is None:
            return RepairResult(current, (), frozenset())
        new_values, applied = outcome
        # Keep the *row's* schema object: a positionally compatible
        # compile schema may still differ (e.g. in domains).
        return RepairResult(Row.from_trusted(row.schema, new_values),
                            self.expand_applied(applied),
                            self.assured_for(applied))

    def _repair_row_instrumented(self, row: Row) -> "RepairResult":
        """The ``Row``-level executor for instrumented rule sets.

        Same frontier discipline as :meth:`repair_values` (positional
        seeding, LIFO drain), but applicability runs through
        :func:`~repro.core.matching.properly_applicable` and
        application through ``rule.apply_in_place`` — so overridden
        ``matches`` implementations are examined exactly as often as
        the historical ``fast_repair`` examined them.
        """
        from .repair import AppliedFix, RepairResult
        ENGINE_STATS.rows_repaired += 1
        current = row.copy()
        cells = current._cells
        assured: set = set()
        applied: List[AppliedFix] = []
        lists_by_pos = self._lists_by_pos
        ev_size = self._ev_size
        counts: Dict[int, int] = {}
        frontier: List[int] = []
        for pos in range(self._nattrs):
            hits = lists_by_pos[pos].get(cells[pos])
            if hits:
                for rule_id in hits:
                    count = counts.get(rule_id, 0) + 1
                    counts[rule_id] = count
                    if count == ev_size[rule_id]:
                        frontier.append(rule_id)
        frontier.sort()
        in_frontier = set(frontier)
        checked: set = set()
        while frontier:
            rule_id = frontier.pop()
            in_frontier.discard(rule_id)
            checked.add(rule_id)
            rule = self.rules[rule_id]
            if not properly_applicable(rule, current, assured):
                continue
            target = self._b_pos[rule_id]
            old = cells[target]
            rule.apply_in_place(current)
            assured.update(rule.touched_attrs)
            applied.append(AppliedFix(rule, rule.attribute, old, rule.fact))
            fact = cells[target]
            hit_lists = lists_by_pos[target]
            hits = hit_lists.get(old)
            if hits:
                for other in hits:
                    counts[other] = counts.get(other, 0) - 1
            hits = hit_lists.get(fact)
            if hits:
                for other in hits:
                    count = counts.get(other, 0) + 1
                    counts[other] = count
                    if (count == ev_size[other] and other not in checked
                            and other not in in_frontier):
                        frontier.append(other)
                        in_frontier.add(other)
        return RepairResult(current, tuple(applied), frozenset(assured))

    # -- provenance rehydration ----------------------------------------------

    def expand_applied(self, applied: Sequence[Tuple[int, str]]
                       ) -> Tuple["AppliedFix", ...]:
        """Rehydrate compact ``(rule_id, old)`` pairs into
        :class:`~repro.core.repair.AppliedFix` provenance records."""
        from .repair import AppliedFix
        fixes = []
        for rule_id, old in applied:
            rule = self.rules[rule_id]
            fixes.append(AppliedFix(rule, rule.attribute, old, rule.fact))
        return tuple(fixes)

    def assured_for(self, applied: Sequence[Tuple[int, str]]
                    ) -> FrozenSet[str]:
        """The assured-attribute set implied by an application log."""
        assured: set = set()
        for rule_id, _old in applied:
            assured.update(self._touched[rule_id])
        return frozenset(assured)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return ("%s(%d rules over %s)"
                % (type(self).__name__, len(self.rules), self.schema.name))


def compile_ruleset(rules: RuleInput,
                    schema: Optional[Schema] = None) -> CompiledRuleSet:
    """Compile Σ, memoizing on :class:`~repro.core.ruleset.RuleSet`.

    A ``RuleSet`` caches its compiled form in ``_compiled`` (cleared by
    every mutating method), so the second and later compilations of an
    unchanged Σ are free.  Plain sequences are compiled per call —
    exactly the cost the historical per-call ``InvertedIndex`` build
    paid — and need an explicit *schema*.
    """
    if isinstance(rules, RuleSet):
        cached = rules._compiled
        if cached is not None and (schema is None
                                   or cached.compatible_with(schema)):
            ENGINE_STATS.compile_cache_hits += 1
            return cached
        compiled = CompiledRuleSet(schema or rules.schema, rules.rules())
        if schema is None or compiled.compatible_with(rules.schema):
            rules._compiled = compiled
        return compiled
    if schema is None:
        raise ValueError(
            "compile_ruleset() needs a schema for plain rule sequences; "
            "pass a RuleSet or the schema argument")
    return CompiledRuleSet(schema, rules)


def compile_for_schema(schema: Schema, rules: RuleInput) -> CompiledRuleSet:
    """Compile Σ for rows laid out by *schema*.

    Prefers the memoized compilation of a :class:`RuleSet` whenever its
    positional layout matches *schema* (same attribute names in the
    same order); otherwise compiles against *schema* directly.
    """
    if isinstance(rules, RuleSet):
        if (rules.schema is schema
                or rules.schema.attribute_names == schema.attribute_names):
            return compile_ruleset(rules)
        return CompiledRuleSet(schema, rules.rules())
    return CompiledRuleSet(schema, rules)


# -- fingerprint-keyed compilation cache (multi-tenant serving) --------------
#
# The RuleSet memo above covers the batch drivers, where one Σ object
# lives for the whole run.  A serving process instead juggles many
# tenants whose rule sets arrive, reload, and roll back independently —
# and its pool workers receive Σ by value, so object-identity memoing
# never hits.  This cache keys compilations on Σ's *content*
# fingerprint (plus the positional schema layout), giving every tenant,
# request, and worker the same O(1) lookup for an unchanged Σ.

#: Compiled rule sets retained per process; enough for a healthy
#: tenant mix, small enough that a churn attack cannot balloon memory.
COMPILED_CACHE_SIZE = 32

_compiled_cache: "OrderedDict[Tuple[str, Tuple[str, ...]], CompiledRuleSet]" \
    = OrderedDict()
_compiled_cache_lock = threading.Lock()


def compile_cached(schema: Schema, rules: RuleInput,
                   fingerprint: Optional[str] = None,
                   max_entries: int = COMPILED_CACHE_SIZE
                   ) -> CompiledRuleSet:
    """Compile Σ through the process-wide fingerprint-keyed LRU cache.

    *fingerprint* may be passed when the caller already knows Σ's
    content hash (serve-pool tasks ship it instead of recomputing);
    otherwise it is derived here.  Two callers holding *different* rule
    objects with identical content share one compilation — the property
    the multi-tenant serving layer and its pool workers rely on.

    Thread-safe; eviction is LRU.  Cache hits are counted in
    ``ENGINE_STATS.compile_cache_hits`` alongside the RuleSet memo's.
    """
    if fingerprint is None:
        fingerprint = rules_fingerprint(rules)
    key = (fingerprint, tuple(schema.attribute_names))
    with _compiled_cache_lock:
        cached = _compiled_cache.get(key)
        if cached is not None:
            _compiled_cache.move_to_end(key)
            ENGINE_STATS.compile_cache_hits += 1
            return cached
    compiled = compile_for_schema(schema, rules)
    compiled._fingerprint = fingerprint
    with _compiled_cache_lock:
        _compiled_cache[key] = compiled
        _compiled_cache.move_to_end(key)
        while len(_compiled_cache) > max(1, max_entries):
            _compiled_cache.popitem(last=False)
    return compiled


def clear_compiled_cache() -> None:
    """Drop every entry of the fingerprint-keyed compilation cache."""
    with _compiled_cache_lock:
        _compiled_cache.clear()
