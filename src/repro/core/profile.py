"""Rule-set profiling.

A curated Σ is an artifact worth inspecting before deployment:
which attributes can it correct, how much evidence does it demand, how
interconnected are the rules (interaction is where inconsistency risk
and cascade behaviour live)?  :func:`ruleset_profile` computes those
descriptive statistics in one linear pass plus a pair scan for the
interaction count; ``describe()`` renders them for humans.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, NamedTuple

from .ruleset import RuleSet


class RuleSetProfile(NamedTuple):
    """Descriptive statistics of one rule set."""

    rule_count: int
    total_size: int
    corrected_attributes: Counter     # B_φ -> #rules
    evidence_attributes: Counter      # A ∈ X_φ -> #rules using it
    evidence_size_distribution: Counter   # |X_φ| -> #rules
    negative_count_distribution: Counter  # |Tp| -> #rules
    #: rule pairs where one rule's corrected attribute appears in the
    #: other's evidence — the cascade/conflict surface (Fig. 4 case 2)
    interacting_pairs: int

    def describe(self) -> str:
        lines = ["%d rules, size(Sigma)=%d" % (self.rule_count,
                                               self.total_size)]
        lines.append("corrects: " + ", ".join(
            "%s (%d)" % (attr, count) for attr, count
            in self.corrected_attributes.most_common()))
        lines.append("evidence uses: " + ", ".join(
            "%s (%d)" % (attr, count) for attr, count
            in self.evidence_attributes.most_common()))
        lines.append("evidence sizes: " + ", ".join(
            "|X|=%d: %d" % (size, count) for size, count
            in sorted(self.evidence_size_distribution.items())))
        lines.append("negative patterns: " + ", ".join(
            "%d: %d" % (size, count) for size, count
            in sorted(self.negative_count_distribution.items())))
        lines.append("interacting rule pairs (cascade surface): %d"
                     % self.interacting_pairs)
        return "\n".join(lines)


def ruleset_profile(rules: RuleSet) -> RuleSetProfile:
    """Compute the profile of *rules*.

    The interaction count is directional pairs collapsed to unordered:
    a pair is interacting if either rule's ``B`` is in the other's
    ``X`` — a superset of the pairs the Fig. 4 case-2 analysis has to
    look at, hence a quick proxy for how "entangled" the set is.
    """
    corrected: Counter = Counter()
    evidence: Counter = Counter()
    evidence_sizes: Counter = Counter()
    negative_sizes: Counter = Counter()
    for rule in rules:
        corrected[rule.attribute] += 1
        for attr in rule.evidence:
            evidence[attr] += 1
        evidence_sizes[len(rule.evidence)] += 1
        negative_sizes[len(rule.negatives)] += 1

    # Count interacting pairs via the attribute-level tallies instead
    # of an O(|Σ|²) scan: rules correcting A x rules reading A, minus
    # self-pairings (a rule never reads its own corrected attribute).
    interacting = 0
    rule_list = rules.rules()
    readers_of: Dict[str, int] = dict(evidence)
    for rule in rule_list:
        interacting += readers_of.get(rule.attribute, 0)
    # Each unordered mutually-interacting pair got counted twice; the
    # exact unordered count needs pair identity, which the tally lacks.
    # Run the precise scan only for small sets; use the tally bound
    # otherwise (documented as an upper bound in that case).
    if len(rule_list) <= 2000:
        interacting = 0
        for i in range(len(rule_list)):
            for j in range(i + 1, len(rule_list)):
                a, b = rule_list[i], rule_list[j]
                if (a.attribute in b.x_attrs
                        or b.attribute in a.x_attrs):
                    interacting += 1
    return RuleSetProfile(
        rule_count=len(rules),
        total_size=rules.size(),
        corrected_attributes=corrected,
        evidence_attributes=evidence,
        evidence_size_distribution=evidence_sizes,
        negative_count_distribution=negative_sizes,
        interacting_pairs=interacting,
    )
