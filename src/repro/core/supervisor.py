"""Worker supervision for the parallel repair executor.

The paper's dependability claim is per-tuple: every fix is
deterministic and assured.  The production drivers, however, push
those per-tuple fixes through a ``fork`` pool, and a process pool has
failure modes no tuple-level theorem covers — a worker SIGKILLed by
the OOM killer, a worker hung on a bad interaction with a C library, a
single *poison row* that crashes the interpreter outright.  Before
this module, any of those stalled ``ApplyResult.get()`` forever or
took the whole run down, defeating the row-level error policies of
:mod:`repro.core.pipeline`.

:class:`ChunkSupervisor` closes that gap with four mechanisms, all of
them confined to the failure path (a healthy run pays only a sliced
wait in the parent):

* **Deadlines + liveness polling.**  Waits on a chunk are sliced into
  ``poll_interval`` windows; between slices the supervisor compares
  the pool's worker PIDs against its baseline, so a dead worker is
  detected in ~one slice even with no ``chunk_timeout`` configured.
  With a timeout, a *hung* worker is bounded too.
* **Retry with backoff.**  A failed chunk is retried up to
  ``max_chunk_retries`` times against a rebuilt pool, sleeping an
  exponentially growing, jittered delay between attempts so transient
  faults (a flaky worker, memory pressure) heal without hammering.
* **Poison-chunk bisection.**  A chunk that keeps killing its workers
  is split in half recursively — each half re-run under supervision —
  until the offending row is isolated.  The poison row becomes an
  ordinary per-row error marker (``error_type`` =
  :data:`POISON_ERROR_TYPE`), which the existing
  :class:`~repro.errors.RowError` / quarantine machinery then routes
  exactly like a row that raised an exception; every innocent
  neighbor is still repaired.
* **Graceful degradation.**  If the pool itself becomes unrecoverable
  (respawning workers fails), the supervisor — unless configured with
  ``degrade_to_serial=False`` — finishes the remaining chunks
  in-process through a caller-supplied serial runner, preserving
  output order and exactly-once semantics.

Because retries happen *before* a chunk's outcomes are yielded and
chunks are always yielded in submission order, the consuming merge
loops (table driver, streaming CSV path, checkpoint commits) are
untouched: output stays byte-identical to a serial run and a
checkpointed job can still be resumed under any mode.

The module also extends fault injection to the worker side:
:class:`WorkerFaultPlan` travels to the workers inside the pool init
blob and can deterministically SIGKILL, ``os._exit``, hang, slow down,
OOM-kill (simulated), or raise inside a worker when a trigger value is
seen — the chaos harness behind ``make test-chaos``.

Counters live in :class:`repro.core.instrumentation.SupervisorStats`:
each supervisor keeps a per-run instance (``executor.stats``) and
mirrors every bump into the process-wide
:data:`~repro.core.instrumentation.SUPERVISOR_STATS` block.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
import warnings
from collections import deque
from multiprocessing import TimeoutError as _MPTimeoutError
from typing import (Callable, Iterable, Iterator, List, NamedTuple, Optional,
                    Sequence, Tuple)

from ..errors import PipelineError
from .instrumentation import SUPERVISOR_STATS, SupervisorStats

__all__ = [
    "ERROR_MARK",
    "POISON_ERROR_TYPE",
    "FAULT_MODES",
    "OpaqueChunk",
    "SupervisorConfig",
    "SupervisorError",
    "ChunkDeadlineError",
    "WorkerCrashError",
    "WorkerFaultInjected",
    "WorkerFaultPlan",
    "ChunkSupervisor",
]

#: First element of a per-row error marker; shared with
#: :mod:`repro.core.parallel` (defined here so the supervisor can mint
#: poison markers without importing it — parallel imports us).
ERROR_MARK = "__row_error__"

#: ``error_type`` recorded for a row isolated by poison-chunk
#: bisection.  Deliberately exception-class-shaped so it aggregates
#: naturally in ``errors_by_type`` next to real exception names.
POISON_ERROR_TYPE = "WorkerCrashError"

#: How long :meth:`ChunkSupervisor._kill_pool` waits for the standard
#: library's ``Pool.terminate()`` before abandoning the teardown to a
#: daemon thread (see the deadlock note in that method).  A healthy
#: teardown completes in milliseconds; a wedged one never completes,
#: so a long wait only slows the failover path down.
POOL_TEARDOWN_TIMEOUT = 1.0

#: ``multiprocessing.pool.TERMINATE`` without importing a private
#: name at module scope; the literal has been stable since 2.6.
_POOL_TERMINATE_STATE = "TERMINATE"


class SupervisorError(PipelineError):
    """The worker pool is unrecoverable and degradation is disabled."""


class ChunkDeadlineError(PipelineError):
    """A :meth:`ChunkSupervisor.run_chunk` call exceeded its per-call
    deadline; the pool was rebuilt, so the orphaned attempt is dead —
    cancelled, not still running somewhere."""


class WorkerCrashError(PipelineError):
    """A :meth:`ChunkSupervisor.run_chunk` call lost its worker (death
    detected by the liveness poll, or collateral loss from another
    caller's pool rebuild) and its retry budget is exhausted.

    Deliberately named like :data:`POISON_ERROR_TYPE`: whether the
    failure is recorded as a per-row marker (batch path) or raised as
    an exception (serving path), it aggregates under one name.
    """


class SupervisorConfig(NamedTuple):
    """Tuning knobs for :class:`ChunkSupervisor`.

    The defaults supervise without changing the happy path's
    semantics: no chunk deadline (dead workers are still detected by
    the liveness poll), two retries with a short jittered backoff, and
    degradation to serial execution when the pool cannot be rebuilt.
    """

    #: seconds a single chunk attempt may run before it is declared
    #: hung and retried; ``None`` disables the deadline (worker
    #: *deaths* are still detected via the liveness poll)
    chunk_timeout: Optional[float] = None
    #: resubmissions granted to a failing chunk before it is bisected
    #: (multi-row) or isolated as poison (single row)
    max_chunk_retries: int = 2
    #: retry budget for the sub-chunks created by bisection; kept low
    #: because by then the failure has already proven persistent
    bisect_max_retries: int = 0
    #: first backoff delay, seconds; doubles per retry
    backoff_base: float = 0.05
    #: backoff ceiling, seconds
    backoff_cap: float = 2.0
    #: uniform jitter fraction added on top of the backoff delay
    backoff_jitter: float = 0.5
    #: seed for the jitter RNG (None: nondeterministic); jitter only
    #: affects timing, never output content
    backoff_seed: Optional[int] = None
    #: wait-slice width, seconds: the latency floor for detecting a
    #: dead worker, and the only supervision cost on the happy path
    poll_interval: float = 0.1
    #: on an unrecoverable pool, continue in-process instead of
    #: raising :class:`SupervisorError`
    degrade_to_serial: bool = True

    def validate(self) -> "SupervisorConfig":
        """Return self if every knob is in range, else raise."""
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive or None, "
                             "got %r" % (self.chunk_timeout,))
        if self.max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0, got %d"
                             % self.max_chunk_retries)
        if self.bisect_max_retries < 0:
            raise ValueError("bisect_max_retries must be >= 0, got %d"
                             % self.bisect_max_retries)
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be >= 0, got %r"
                             % (self.backoff_jitter,))
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive, got %r"
                             % (self.poll_interval,))
        return self


# -- worker-side fault injection ---------------------------------------------

#: Modes a :class:`WorkerFaultPlan` can fire.
FAULT_MODES = ("kill", "exit", "oom", "hang", "slow", "exception")


class WorkerFaultInjected(RuntimeError):
    """Exception raised inside a worker by ``mode='exception'``.

    Unlike :class:`~repro.core.pipeline.FaultInjected` this one *is*
    meant to be absorbed: it exercises the ordinary per-row error
    capture inside the worker, not a process kill.
    """


class WorkerFaultPlan:
    """Deterministic worker-side chaos, armed via the pool init blob.

    When a worker is about to repair a row whose raw values contain
    *trigger_value*, the plan fires *mode*:

    ``kill``
        SIGKILL the worker process — the hard death of an OOM kill or
        a segfault, with no Python-level cleanup.
    ``exit``
        ``os._exit(1)`` — an abrupt interpreter exit that still skips
        all teardown.
    ``oom``
        ``os._exit(137)`` — the exit status a kernel OOM kill leaves
        behind (128 + SIGKILL), for log/monitoring realism.
    ``hang``
        Sleep for *delay_seconds* (default: effectively forever) —
        a worker stuck in a syscall or native loop.
    ``slow``
        Sleep *delay_seconds*, then repair normally — a straggler.
    ``exception``
        Raise :class:`WorkerFaultInjected` — exercises the per-row
        error capture, not the supervision layer.

    *limit* bounds the total number of firings **across all worker
    processes and respawns**, coordinated through sentinel files in
    *state_dir* (created atomically with ``O_CREAT | O_EXCL``), so a
    "transient" fault that fails twice and then heals is expressible
    even though every firing may kill the process that fired it.
    ``limit=None`` fires every time — a deterministic poison row.

    The plan is pickled into the worker init blob; it holds only plain
    values, so it crosses the process boundary trivially.
    """

    def __init__(self, trigger_value: str, mode: str,
                 limit: Optional[int] = None,
                 state_dir: Optional[str] = None,
                 delay_seconds: float = 3600.0):
        if mode not in FAULT_MODES:
            raise ValueError("unknown fault mode %r; expected one of %s"
                             % (mode, ", ".join(FAULT_MODES)))
        if limit is not None:
            if limit < 1:
                raise ValueError("limit must be >= 1 or None, got %d"
                                 % limit)
            if state_dir is None:
                raise ValueError("a firing limit needs state_dir: the "
                                 "budget must survive worker respawns")
        if delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0, got %r"
                             % (delay_seconds,))
        self.trigger_value = trigger_value
        self.mode = mode
        self.limit = limit
        self.state_dir = os.fspath(state_dir) if state_dir else None
        self.delay_seconds = delay_seconds

    def _consume_budget(self) -> bool:
        """Claim one firing; False once *limit* firings happened."""
        if self.limit is None:
            return True
        os.makedirs(self.state_dir, exist_ok=True)
        for i in range(self.limit):
            path = os.path.join(self.state_dir, "fired.%d" % i)
            try:
                os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
        return False

    def maybe_fire(self, values: Sequence[str]) -> None:
        """Fire the configured fault if *values* contains the trigger."""
        if self.trigger_value not in values:
            return
        if not self._consume_budget():
            return
        if self.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.mode == "exit":
            os._exit(1)
        elif self.mode == "oom":
            os._exit(137)
        elif self.mode == "hang":
            time.sleep(self.delay_seconds)
        elif self.mode == "slow":
            time.sleep(self.delay_seconds)
        else:  # exception
            raise WorkerFaultInjected(
                "injected worker fault on trigger %r" % self.trigger_value)

    def __repr__(self) -> str:
        return ("WorkerFaultPlan(trigger=%r, mode=%r, limit=%r)"
                % (self.trigger_value, self.mode, self.limit))


# -- the supervisor ----------------------------------------------------------

class OpaqueChunk:
    """Marker base class for chunk *descriptors* the supervisor must
    not peek inside.

    The shared-memory transport (:mod:`repro.core.parallel`) submits a
    tiny reference object instead of the row lists themselves; the
    supervisor treats such chunks as opaque — it submits and resubmits
    them unchanged — and only converts them to plain row lists, through
    the ``materialize`` hook, at the points that genuinely need rows:
    poison-chunk bisection, single-row isolation, and degraded serial
    execution.  Subclasses must implement ``__len__`` (row count) and
    survive pickling.
    """

    __slots__ = ()


def _poison_marker(tries: int):
    return (ERROR_MARK, POISON_ERROR_TYPE,
            "row crashed or hung its repair worker %d time(s); isolated "
            "by poison-chunk bisection" % tries)


class ChunkSupervisor:
    """Owns a worker pool and runs chunks through it under supervision.

    The supervisor is deliberately generic: it knows nothing about
    rules or schemas, only about *chunks* (opaque row-value lists),
    a *task* function workers execute, a *spawn* callable that builds
    a fresh pool, and a *serial_runner* for degraded mode.
    :class:`repro.core.parallel.ParallelRepairExecutor` supplies all
    four.

    Parameters
    ----------
    workers:
        Pool size; informational (stats) — the pool itself comes from
        *spawn*.
    spawn:
        Zero-argument callable returning a started
        ``multiprocessing.pool.Pool`` whose workers are initialized
        and ready.  Called once up front and once per rebuild.
    task:
        The function submitted per chunk, as
        ``pool.apply_async(task, ((chunk_id, rows),))``; must return
        ``(chunk_id, outcomes)``.
    serial_runner:
        ``rows -> outcomes`` executed in-process for degraded mode.
    config:
        A :class:`SupervisorConfig`; ``None`` means the defaults.
    materialize:
        ``OpaqueChunk -> list-of-row-lists``.  Required when chunks may
        be :class:`OpaqueChunk` descriptors; called (in the parent)
        before bisection, poison-row isolation, or serial degradation —
        everywhere the supervisor needs the actual rows.
    """

    def __init__(self, workers: int,
                 spawn: Callable[[], object],
                 task: Callable,
                 serial_runner: Callable[[List[list]], list],
                 config: Optional[SupervisorConfig] = None,
                 materialize: Optional[Callable[["OpaqueChunk"], List[list]]] = None):
        self.workers = workers
        self.config = (config or SupervisorConfig()).validate()
        self.stats = SupervisorStats()
        self._spawn = spawn
        self._task = task
        self._serial_runner = serial_runner
        self._materialize = materialize
        self._rng = random.Random(self.config.backoff_seed)
        self._chunk_id = 0
        #: True once any recovery action (rebuild/degrade) has run;
        #: the executor uses it to pick terminate() over close()
        self.failed = False
        #: True once execution has fallen back to the serial runner
        self.degraded = False
        self.pool = None
        self._baseline_pids: frozenset = frozenset()
        # run_chunk() may be called from many serving threads at once;
        # the lock serializes pool lifecycle transitions and the
        # generation counter attributes each rebuild to exactly one
        # failure event (the batch map_chunks path is single-threaded
        # and pays only an uncontended acquire).
        self._lock = threading.RLock()
        self._generation = 0
        self._start_pool(initial=True)

    # -- counters ------------------------------------------------------------

    def _bump(self, name: str, amount: int = 1) -> None:
        self.stats.bump(name, amount)
        SUPERVISOR_STATS.bump(name, amount)

    # -- pool lifecycle ------------------------------------------------------

    def _start_pool(self, initial: bool = False) -> None:
        if self.degraded:
            return
        try:
            self.pool = self._spawn()
        except Exception as exc:
            self.pool = None
            self._degrade_or_raise(exc)
            return
        if not initial:
            self._bump("workers_respawned", self.workers)
        self._refresh_baseline()

    def _degrade_or_raise(self, exc: BaseException) -> None:
        self.failed = True
        if not self.config.degrade_to_serial:
            raise SupervisorError(
                "repair worker pool is unrecoverable and "
                "degrade_to_serial is off: %s: %s"
                % (type(exc).__name__, exc)) from exc
        self.degraded = True
        self._bump("degradations")
        warnings.warn(
            "repair worker pool is unrecoverable (%s: %s); degrading to "
            "in-process serial execution of the remaining chunks"
            % (type(exc).__name__, exc), RuntimeWarning, stacklevel=4)

    def _worker_pids(self) -> frozenset:
        pool = self.pool
        if pool is None:
            return frozenset()
        try:
            return frozenset(proc.pid for proc in pool._pool)
        except Exception:  # racing the pool's maintenance thread
            return frozenset()

    def _refresh_baseline(self) -> None:
        self._baseline_pids = self._worker_pids()

    def _kill_pool(self) -> None:
        pool, self.pool = self.pool, None
        if pool is None:
            return
        # Never trust Pool.terminate() with a compromised pool: a
        # worker SIGKILLed while holding the task-queue lock (or an
        # idle respawn blocked inside inqueue.get(), which holds the
        # same lock) deadlocks _help_stuff_finish forever.  Stop the
        # maintenance thread from respawning, SIGKILL the workers
        # ourselves so cancellation semantics hold no matter what,
        # then run the stdlib teardown on a daemon thread with a
        # bounded wait — if it still wedges, abandon it (its helper
        # threads are daemonic and cannot block interpreter exit).
        try:
            pool._worker_handler._state = _POOL_TERMINATE_STATE
        except Exception:
            pass
        for proc in list(getattr(pool, "_pool", None) or []):
            try:
                if proc.pid is not None and proc.is_alive():
                    os.kill(proc.pid, signal.SIGKILL)
            except Exception:
                pass

        def _teardown() -> None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass

        reaper = threading.Thread(target=_teardown,
                                  name="repro-pool-reaper", daemon=True)
        reaper.start()
        reaper.join(POOL_TEARDOWN_TIMEOUT)

    def _rebuild_pool(self) -> None:
        """Tear down the (suspect) pool and start a fresh one."""
        with self._lock:
            self.failed = True
            self._generation += 1
            self._kill_pool()
            self._start_pool()

    def close(self) -> None:
        """Graceful shutdown: let idle workers drain and exit."""
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.close()
            pool.join()

    def terminate(self) -> None:
        """Hard shutdown: kill workers, including hung or busy ones."""
        self._kill_pool()

    # -- supervised execution ------------------------------------------------

    def _submit(self, rows: List[list]):
        with self._lock:
            self._chunk_id += 1
            self._bump("chunks_submitted")
            return self.pool.apply_async(self._task,
                                         ((self._chunk_id, rows),))

    def _wait(self, result) -> Tuple[str, object]:
        """Await one chunk: ``('ok', (chunk_id, outcomes))`` or a
        failure verdict ``('deadline' | 'died' | 'error', detail)``.

        The wait is sliced so worker deaths surface within about one
        ``poll_interval`` instead of only at the (possibly absent)
        deadline: the pool silently respawns a killed worker, but the
        task it held is lost forever — exactly the stall this layer
        exists to bound.
        """
        timeout = self.config.chunk_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait_slice = self.config.poll_interval
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return ("deadline", None)
                wait_slice = min(wait_slice, remaining)
            try:
                return ("ok", result.get(wait_slice))
            except _MPTimeoutError:
                pass
            except Exception as exc:  # task-level failure crossed get()
                return ("error", exc)
            if self._worker_pids() != self._baseline_pids:
                return ("died", None)

    def _record_failure(self, status: str) -> None:
        if status == "deadline":
            self._bump("deadline_hits")
        elif status == "died":
            self._bump("worker_deaths")

    def _backoff_sleep(self, attempt: int) -> None:
        delay = min(self.config.backoff_cap,
                    self.config.backoff_base * (2 ** (attempt - 1)))
        delay *= 1.0 + self.config.backoff_jitter * self._rng.random()
        if delay > 0:
            time.sleep(delay)

    def _materialize_rows(self, rows) -> List[list]:
        """Turn an :class:`OpaqueChunk` descriptor back into row lists;
        plain row lists pass through untouched."""
        if isinstance(rows, OpaqueChunk):
            if self._materialize is None:
                raise SupervisorError(
                    "received an OpaqueChunk but no materialize hook "
                    "was configured")
            return self._materialize(rows)
        return rows

    def _run_serial(self, rows: List[list]) -> list:
        self._bump("serial_chunks")
        return self._serial_runner(self._materialize_rows(rows))

    def _run_alone(self, rows: List[list], budget: int) -> list:
        """Run one chunk with nothing else in flight, so every failure
        is attributable to *it*; bisect or isolate on budget
        exhaustion."""
        attempts = 0
        while True:
            if self.degraded or self.pool is None:
                return self._run_serial(rows)
            status, value = self._wait(self._submit(rows))
            if status == "ok":
                return value[1]
            self._record_failure(status)
            self._rebuild_pool()
            if attempts >= budget:
                break
            attempts += 1
            self._bump("chunk_retries")
            self._backoff_sleep(attempts)
        # Past here the chunk itself is under suspicion; bisection and
        # isolation need the real rows, so opaque descriptors stop
        # being opaque now.
        rows = self._materialize_rows(rows)
        if len(rows) <= 1:
            self._bump("rows_isolated")
            return [_poison_marker(attempts + 1) for _ in rows]
        self._bump("chunks_bisected")
        mid = len(rows) // 2
        bisect_budget = self.config.bisect_max_retries
        return (self._run_alone(rows[:mid], bisect_budget)
                + self._run_alone(rows[mid:], bisect_budget))

    # -- request-scoped execution (the serving path) -------------------------

    def _await_request(self, result, timeout: Optional[float],
                       generation: int) -> Tuple[str, object]:
        """Like :meth:`_wait`, but with a per-call deadline (overriding
        the config-wide ``chunk_timeout``) and a generation check: if
        another thread rebuilt the pool while we waited, our task died
        with the old pool and will never complete."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait_slice = self.config.poll_interval
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return ("deadline", None)
                wait_slice = min(wait_slice, remaining)
            try:
                return ("ok", result.get(wait_slice))
            except _MPTimeoutError:
                pass
            except Exception as exc:
                return ("error", exc)
            if self._generation != generation:
                return ("died", None)
            if self._worker_pids() != self._baseline_pids:
                return ("died", None)

    def run_chunk(self, rows, timeout: Optional[float] = None,
                  retries: int = 0) -> list:
        """Run one chunk with a per-call deadline — the cancellation
        hook the serving layer builds on.

        Unlike :meth:`map_chunks`, failures here are never bisected and
        never degrade silently: on a deadline hit or a worker death the
        pool is **rebuilt** — which is what cancels the orphaned
        attempt; a ``fork`` worker cannot be interrupted politely — and
        after *retries* resubmissions the failure is raised as
        :class:`ChunkDeadlineError` or :class:`WorkerCrashError` so the
        caller (e.g. a circuit breaker) can count it and pick a
        fallback.  Task-level exceptions (the task raised; the pool is
        healthy) propagate as-is without a rebuild.

        Thread-safe: concurrent calls share the pool, and a rebuild
        triggered by one caller's failure is attributed exactly once
        via the generation counter.  Other callers' in-flight tasks die
        with the old pool; they observe the generation change within
        one ``poll_interval`` and fail fast as ``WorkerCrashError``
        (or retry) instead of blocking on a result that will never
        arrive.

        With *timeout* ``None``, the config-wide ``chunk_timeout``
        applies (which may itself be ``None`` — then only worker
        deaths bound the wait).
        """
        if timeout is None:
            timeout = self.config.chunk_timeout
        attempts = 0
        while True:
            with self._lock:
                if self.degraded:
                    return self._run_serial(rows)
                if self.pool is None:
                    # A previous caller's rebuild failed (or raised with
                    # degradation off); probe a fresh spawn — this is
                    # the half-open recovery path.
                    self._start_pool()
                    if self.degraded:
                        return self._run_serial(rows)
                generation = self._generation
                result = self._submit(rows)
            status, value = self._await_request(result, timeout, generation)
            if status == "ok":
                return value[1]
            if status == "error":
                raise value
            self._record_failure(status)
            with self._lock:
                if self._generation == generation:
                    # First thread to notice this failure event owns
                    # the rebuild; latecomers see the bumped generation
                    # and skip straight to their retry/raise decision.
                    self._rebuild_pool()
            if attempts >= retries:
                if status == "deadline":
                    raise ChunkDeadlineError(
                        "chunk exceeded its %.3fs deadline; the worker "
                        "pool was rebuilt so the attempt is cancelled, "
                        "not orphaned" % timeout)
                raise WorkerCrashError(
                    "a repair worker died mid-chunk (or was lost to a "
                    "concurrent pool rebuild) and the retry budget "
                    "(%d) is exhausted" % retries)
            attempts += 1
            self._bump("chunk_retries")
            self._backoff_sleep(attempts)

    def map_chunks(self, chunks: Iterable[Sequence[Sequence[str]]],
                   max_inflight: Optional[int] = None) -> Iterator[list]:
        """Supervised version of the executor's pipelined map: yield
        per-chunk outcome lists in submission order, exactly once each.

        Healthy chunks flow through the pool with a bounded in-flight
        window, identical to the unsupervised design.  On the first
        failure the whole in-flight backlog is re-run *alone* (one
        chunk at a time) so the culprit is attributed precisely, then
        pipelined submission resumes for subsequent chunks against the
        rebuilt pool.
        """
        if max_inflight is None:
            max_inflight = 2 * self.workers
        pending: deque = deque()  # [rows, AsyncResult | None] pairs
        for chunk in chunks:
            rows = chunk if isinstance(chunk, OpaqueChunk) else list(chunk)
            if self.degraded or self.pool is None:
                pending.append([rows, None])
            else:
                pending.append([rows, self._submit(rows)])
            if len(pending) >= max_inflight:
                yield self._drain_head(pending)
        while pending:
            yield self._drain_head(pending)

    def _drain_head(self, pending: deque) -> list:
        rows, result = pending[0]
        if result is not None:
            status, value = self._wait(result)
            if status == "ok":
                pending.popleft()
                return value[1]
            self._record_failure(status)
            # The pool is now suspect and every in-flight task may be
            # lost; rebuild once and re-run the backlog attributably.
            # The head's re-run below is its first retry.
            self._rebuild_pool()
            self._bump("chunk_retries")
            self._backoff_sleep(1)
            for entry in pending:
                entry[1] = None
        pending.popleft()
        return self._run_alone(rows, self.config.max_chunk_retries)
