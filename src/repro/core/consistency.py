"""Consistency analysis of fixing rules (Sections 4.2 and 5.2).

A set Σ is **consistent** iff every tuple has a *unique fix* by Σ.  By
Proposition 3, Σ is consistent iff every pair of distinct rules is
consistent, so both checkers below work pairwise:

* :func:`check_pair_characterize` — the **rule characterization** test
  of Fig. 4 (``isConsist_r``): four syntactic case conditions, O(1)
  per pair with hashed negative patterns, ``O(size(Σ)²)`` overall.
* :func:`check_pair_enumerate` — the **tuple enumeration** test of
  Section 5.2.1 (``isConsist_t``): materialize every tuple that could
  match both rules (values drawn from the evidence and negative
  patterns, a distinguished out-of-domain symbol elsewhere), chase it
  in both preference orders, and compare fixpoints.

Both return a :class:`Conflict` witness rather than a bare boolean so
the resolution workflow (Section 5.3) can act on *why* the pair
conflicts.  ``tests/test_properties.py`` checks the two are equivalent
on randomly generated rule pairs.

Two optimizations keep the Proposition 3 pairwise reduction tractable
at benchmark scale (|Σ| in the thousands):

* **Blocked candidate generation** (``strategy="blocked"``, the
  default for the characterization method).  By Lemma 4, only pairs
  whose evidence patterns are compatible on shared attributes can
  conflict, and the Fig. 4 case analysis narrows that further: every
  conflicting pair either shares a negative pattern on a common
  corrected attribute with differing facts (case 1) or has one rule's
  evidence constant on the other's corrected attribute among that
  other's negative patterns (cases 2a–2c).  Both conditions are
  equi-joins, so hashing negatives by ``(B, value)`` and evidence
  entries by ``(attr, value)`` yields the candidate pairs in
  near-linear time for realistic rule sets; the all-pairs scan only
  reappears when the rules genuinely all collide.  Candidates are
  deduplicated and checked in the same ``(i, j)`` lexicographic order
  the full scan uses, so the conflict list — and the ``first_only``
  conflict — is *identical* to the pairwise scan's, not merely
  equivalent.  ``tests/test_blocked_consistency.py`` asserts this with
  Hypothesis, including on adversarial all-colliding sets.
* **Verdict caching** (:func:`find_conflicts_cached`).  Verdicts are
  cached per process under the rule set's content fingerprint
  (:func:`repro.core.engine.rules_fingerprint`), so drivers that
  validate Σ once per table, per pipeline stage, or per pool worker
  never re-scan an unchanged Σ; :func:`seed_conflict_cache` lets a
  parent process hand its verdict to workers through the init blob.

Scan and pruning activity is counted in
:data:`repro.core.instrumentation.ENGINE_STATS`.
"""

from __future__ import annotations

import itertools
from typing import (Dict, Iterable, List, NamedTuple, Optional, Sequence,
                    Tuple, Union)

from ..relational import Row, Schema
from .engine import rules_fingerprint
from .instrumentation import ENGINE_STATS
from .repair import chase_repair
from .rule import FixingRule
from .ruleset import RuleSet

#: Placeholder value for attributes unconstrained by either rule during
#: tuple enumeration.  The NUL prefix keeps it outside every active
#: domain (pattern constants are ordinary strings).
OUT_OF_DOMAIN = "\x00<out-of-domain>"

#: Conflict kinds, named after the case analysis of Section 5.2.2.
CASE_SAME_ATTRIBUTE = "case1:same-attribute"
CASE_B_I_IN_X_J = "case2a:Bi-in-Xj"
CASE_B_J_IN_X_I = "case2b:Bj-in-Xi"
CASE_MUTUAL = "case2c:mutual"
CASE_ENUMERATED = "enumerated-witness"


class Conflict(NamedTuple):
    """A witness that two rules are inconsistent."""

    rule_a: FixingRule
    rule_b: FixingRule
    kind: str
    detail: str
    witness: Optional[dict] = None

    def describe(self) -> str:
        text = ("rules %s and %s conflict (%s): %s"
                % (self.rule_a.name, self.rule_b.name, self.kind,
                   self.detail))
        if self.witness is not None:
            text += " [witness tuple: %r]" % (self.witness,)
        return text


def _evidence_compatible(rule_a: FixingRule, rule_b: FixingRule) -> bool:
    """Line 2 of Fig. 4: evidence patterns agree on shared X attributes."""
    shared = rule_a.x_attrs & rule_b.x_attrs
    return all(rule_a.evidence[attr] == rule_b.evidence[attr]
               for attr in shared)


def check_pair_characterize(rule_a: FixingRule,
                            rule_b: FixingRule) -> Optional[Conflict]:
    """``isConsist_r`` on one pair: Fig. 4 lines 2–11.

    Returns ``None`` when the pair is consistent, otherwise a
    :class:`Conflict` naming the violated case.
    """
    if not _evidence_compatible(rule_a, rule_b):
        return None  # no tuple can match both (Lemma 4)

    b_a, b_b = rule_a.attribute, rule_b.attribute

    if b_a == b_b:
        # Case 1: same corrected attribute.  Conflict iff some tuple
        # matches both (overlapping negatives) and the facts disagree.
        overlap = rule_a.negatives & rule_b.negatives
        if overlap and rule_a.fact != rule_b.fact:
            return Conflict(
                rule_a, rule_b, CASE_SAME_ATTRIBUTE,
                "both correct %r, negatives overlap on %r, but facts "
                "differ (%r vs %r)"
                % (b_a, sorted(overlap), rule_a.fact, rule_b.fact))
        return None

    a_in_b = b_a in rule_b.x_attrs  # B_i ∈ X_j
    b_in_a = b_b in rule_a.x_attrs  # B_j ∈ X_i

    if a_in_b and not b_in_a:
        # Case 2(a): rule_b reads the attribute rule_a writes.
        if rule_b.evidence[b_a] in rule_a.negatives:
            return Conflict(
                rule_a, rule_b, CASE_B_I_IN_X_J,
                "%s writes %r which %s uses as evidence, and the evidence "
                "value %r is one of %s's negative patterns"
                % (rule_a.name, b_a, rule_b.name,
                   rule_b.evidence[b_a], rule_a.name))
        return None

    if b_in_a and not a_in_b:
        # Case 2(b): symmetric to 2(a).
        if rule_a.evidence[b_b] in rule_b.negatives:
            return Conflict(
                rule_a, rule_b, CASE_B_J_IN_X_I,
                "%s writes %r which %s uses as evidence, and the evidence "
                "value %r is one of %s's negative patterns"
                % (rule_b.name, b_b, rule_a.name,
                   rule_a.evidence[b_b], rule_b.name))
        return None

    if a_in_b and b_in_a:
        # Case 2(c): each reads what the other writes.
        if (rule_a.evidence[b_b] in rule_b.negatives
                and rule_b.evidence[b_a] in rule_a.negatives):
            return Conflict(
                rule_a, rule_b, CASE_MUTUAL,
                "each rule's evidence value on the other's corrected "
                "attribute is among the other's negative patterns")
        return None

    # Case 2(d): neither reads the other's corrected attribute — the two
    # updates commute, always consistent.
    return None


def _candidate_values(attr: str, rule_a: FixingRule,
                      rule_b: FixingRule) -> List[str]:
    """``V_ij(A)``: constants either rule mentions at *attr*.

    Per Section 5.2.1 this is the union of evidence constants and
    negative patterns at that attribute (facts are write-side only and
    never needed to *match* both rules).
    """
    values = set()
    for rule in (rule_a, rule_b):
        if attr in rule.evidence:
            values.add(rule.evidence[attr])
        if attr == rule.attribute:
            values.update(rule.negatives)
    return sorted(values)


def enumerate_candidate_tuples(schema: Schema, rule_a: FixingRule,
                               rule_b: FixingRule) -> Iterable[Row]:
    """Every tuple that could possibly match both rules (Example 9).

    Attributes mentioned by either rule range over ``V_ij(A)``; all
    other attributes take the :data:`OUT_OF_DOMAIN` placeholder.
    """
    mentioned = sorted((rule_a.x_attrs | {rule_a.attribute}
                        | rule_b.x_attrs | {rule_b.attribute}),
                       key=schema.index_of)
    pools = [_candidate_values(attr, rule_a, rule_b) for attr in mentioned]
    base = {name: OUT_OF_DOMAIN for name in schema.attribute_names}
    for combo in itertools.product(*pools):
        cells = dict(base)
        cells.update(zip(mentioned, combo))
        yield Row(schema, cells)


def check_pair_enumerate(schema: Schema, rule_a: FixingRule,
                         rule_b: FixingRule) -> Optional[Conflict]:
    """``isConsist_t`` on one pair: chase every candidate tuple both ways.

    A pair is inconsistent iff some candidate tuple reaches different
    fixpoints depending on which rule is preferred first.
    """
    pair = [rule_a, rule_b]
    for row in enumerate_candidate_tuples(schema, rule_a, rule_b):
        fix_ab = chase_repair(row, pair, order=(0, 1))
        fix_ba = chase_repair(row, pair, order=(1, 0))
        if fix_ab.row != fix_ba.row:
            return Conflict(
                rule_a, rule_b, CASE_ENUMERATED,
                "chase order %s-first yields %r, %s-first yields %r"
                % (rule_a.name, fix_ab.row.values,
                   rule_b.name, fix_ba.row.values),
                witness=row.as_dict())
    return None


RuleInput = Union[RuleSet, Sequence[FixingRule]]


def _rules_and_schema(rules: RuleInput,
                      schema: Optional[Schema]) -> tuple:
    if isinstance(rules, RuleSet):
        return rules.rules(), rules.schema
    return list(rules), schema


#: Candidate-pair strategies accepted by :func:`find_conflicts`.
VALID_STRATEGIES = ("blocked", "pairwise")


def blocked_candidate_pairs(rule_list: Sequence[FixingRule]
                            ) -> List[Tuple[int, int]]:
    """The Lemma-4-admissible candidate pairs of Σ, in ``(i, j)``
    lexicographic order with ``i < j``.

    A pair can only conflict under the Fig. 4 characterization when at
    least one of two hash-joinable conditions holds:

    * **case 1** — same corrected attribute ``B``, a shared negative
      pattern, and differing facts: join the rules on ``(B, negative)``
      keys and emit cross-fact pairs within each bucket;
    * **cases 2a/2b/2c** — some rule reads (as evidence) a value the
      other can erase: join negative patterns ``(B_i, n)`` against
      evidence entries ``(attr, value)`` on equal keys.

    The union is a *superset* of the conflicting pairs (evidence
    compatibility on the remaining shared attributes is still checked
    pairwise), so checking exactly these pairs finds every conflict
    the full scan finds.  Pairs outside every bucket — same-``B`` rules
    with disjoint negatives or equal facts, different-``B`` rules where
    neither evidence pattern mentions the other's negative values —
    fall under Fig. 4's consistent cases by construction and are never
    materialized.

    Within a case-1 bucket the join is additionally *shape-aware*:
    two rules over the same evidence attributes but different evidence
    values disagree on a shared X attribute, so Lemma 4 already rules
    the pair out — same-shape rules are therefore sub-bucketed by
    their full evidence pattern and only identical-evidence rules are
    cross-paired.  Mined rule sets (one rule per FD group) put
    thousands of same-shape rules in one ``(B, value)`` bucket; this
    keeps them near-linear where the naive cross-fact join is
    quadratic.  The refinement drops only provably consistent pairs,
    so the emitted conflict list is unchanged.
    """
    by_negative: Dict[Tuple[str, str], List[int]] = {}
    by_evidence: Dict[Tuple[str, str], List[int]] = {}
    for rule_id, rule in enumerate(rule_list):
        attribute = rule.attribute
        for value in rule.negatives:
            by_negative.setdefault((attribute, value), []).append(rule_id)
        for attr, value in rule._evidence_items:
            by_evidence.setdefault((attr, value), []).append(rule_id)

    pairs = set()
    for key, writer_ids in by_negative.items():
        # Case 1: same (B, negative) bucket, facts differ.  Partition
        # by evidence shape: same-shape pairs must share the entire
        # evidence pattern to be co-matchable, cross-shape pairs are
        # filtered pairwise by the Fig. 4 check.
        if len(writer_ids) > 1:
            by_shape: Dict[frozenset, List[int]] = {}
            for rule_id in writer_ids:
                by_shape.setdefault(rule_list[rule_id].x_attrs,
                                    []).append(rule_id)
            shape_groups = list(by_shape.values())
            for members in shape_groups:
                if len(members) < 2:
                    continue
                by_pattern: Dict[tuple, List[int]] = {}
                for rule_id in members:
                    by_pattern.setdefault(
                        rule_list[rule_id]._evidence_items,
                        []).append(rule_id)
                for matching in by_pattern.values():
                    _cross_fact_pairs(rule_list, matching, pairs)
            for g in range(len(shape_groups)):
                for h in range(g + 1, len(shape_groups)):
                    for i in shape_groups[g]:
                        fact_i = rule_list[i].fact
                        for j in shape_groups[h]:
                            if rule_list[j].fact != fact_i:
                                pairs.add((i, j) if i < j else (j, i))
        # Cases 2a/2b/2c: a reader's evidence constant at B equals one
        # of the writer's negative patterns at B.
        reader_ids = by_evidence.get(key)
        if reader_ids:
            for i in writer_ids:
                for j in reader_ids:
                    if i != j:
                        pairs.add((i, j) if i < j else (j, i))
    return sorted(pairs)


def _cross_fact_pairs(rule_list: Sequence[FixingRule],
                      member_ids: List[int], pairs: set) -> None:
    """Emit every cross-fact pair among *member_ids* into *pairs*."""
    if len(member_ids) < 2:
        return
    by_fact: Dict[str, List[int]] = {}
    for rule_id in member_ids:
        by_fact.setdefault(rule_list[rule_id].fact, []).append(rule_id)
    if len(by_fact) < 2:
        return
    groups = list(by_fact.values())
    for g in range(len(groups)):
        for h in range(g + 1, len(groups)):
            for i in groups[g]:
                for j in groups[h]:
                    pairs.add((i, j) if i < j else (j, i))


def find_conflicts(rules: RuleInput, method: str = "characterize",
                   schema: Optional[Schema] = None,
                   first_only: bool = False,
                   strategy: Optional[str] = None) -> List[Conflict]:
    """All pairwise conflicts in Σ (Proposition 3 reduction).

    Parameters
    ----------
    rules:
        The rule set Σ (a :class:`RuleSet` or plain sequence).
    method:
        ``"characterize"`` (isConsist_r, default) or ``"enumerate"``
        (isConsist_t).  Enumeration needs a schema — taken from the
        RuleSet or the *schema* argument.
    first_only:
        Stop at the first conflict (the paper's "real case" behavior
        in Exp-1, as opposed to the all-pairs worst case).
    strategy:
        ``"blocked"`` checks only the candidate pairs admitted by
        :func:`blocked_candidate_pairs`; ``"pairwise"`` scans all
        ``|Σ|·(|Σ|-1)/2`` pairs.  The default is blocked for the
        characterization (whose case analysis the blocking mirrors
        exactly, so the output is identical) and pairwise for
        enumeration (kept exhaustive by default; pass
        ``strategy="blocked"`` to opt in, sound whenever the two
        methods agree — which ``tests/test_properties.py`` verifies).

    The conflict list is deterministic and strategy-independent:
    pairs are checked in ``(i, j)`` lexicographic order either way.
    """
    rule_list, resolved_schema = _rules_and_schema(rules, schema)
    if method == "characterize":
        def check(a, b):
            return check_pair_characterize(a, b)
    elif method == "enumerate":
        if resolved_schema is None:
            raise ValueError(
                "method='enumerate' needs a schema; pass a RuleSet or the "
                "schema argument")

        def check(a, b):
            return check_pair_enumerate(resolved_schema, a, b)
    else:
        raise ValueError("method must be 'characterize' or 'enumerate', "
                         "got %r" % method)
    if strategy is None:
        strategy = "blocked" if method == "characterize" else "pairwise"
    elif strategy not in VALID_STRATEGIES:
        raise ValueError("strategy must be one of %s, got %r"
                         % (", ".join(repr(s) for s in VALID_STRATEGIES),
                            strategy))

    ENGINE_STATS.consistency_checks += 1
    total_pairs = len(rule_list) * (len(rule_list) - 1) // 2
    conflicts: List[Conflict] = []
    if strategy == "blocked":
        candidates = blocked_candidate_pairs(rule_list)
        ENGINE_STATS.pairs_examined += len(candidates)
        ENGINE_STATS.pairs_pruned += total_pairs - len(candidates)
        for i, j in candidates:
            conflict = check(rule_list[i], rule_list[j])
            if conflict is not None:
                conflicts.append(conflict)
                if first_only:
                    return conflicts
        return conflicts

    ENGINE_STATS.pairs_examined += total_pairs
    for i in range(len(rule_list)):
        for j in range(i + 1, len(rule_list)):
            conflict = check(rule_list[i], rule_list[j])
            if conflict is not None:
                conflicts.append(conflict)
                if first_only:
                    return conflicts
    return conflicts


# -- verdict caching ----------------------------------------------------------
#
# Keyed by the content fingerprint of Σ (rules_fingerprint), valid for
# the characterization method with the default strategy — the verdict
# is a pure function of rule content, independent of schema and
# process.  Each entry is (complete, conflicts): `complete` records
# whether the scan ran to the end (a first_only scan that found a
# conflict did not, so it can only answer later first_only queries).

_VERDICT_CACHE: Dict[str, Tuple[bool, Tuple[Conflict, ...]]] = {}


def find_conflicts_cached(rules: RuleInput,
                          first_only: bool = False) -> List[Conflict]:
    """:func:`find_conflicts` (characterize, blocked) with the verdict
    cached on Σ's content fingerprint.

    The repair drivers — ``repair_table(check_consistency=True)``, the
    parallel executor, the streaming session, the CLI — all validate Σ
    through this function, so one rule set is scanned at most once per
    process however many tables, shards, or pipeline stages it repairs.
    """
    fingerprint = rules_fingerprint(rules)
    cached = _VERDICT_CACHE.get(fingerprint)
    if cached is not None:
        complete, conflicts = cached
        if first_only:
            ENGINE_STATS.consistency_cache_hits += 1
            return [conflicts[0]] if conflicts else []
        if complete:
            ENGINE_STATS.consistency_cache_hits += 1
            return list(conflicts)
    conflicts_list = find_conflicts(rules, first_only=first_only)
    complete = not (first_only and conflicts_list)
    _VERDICT_CACHE[fingerprint] = (complete, tuple(conflicts_list))
    return conflicts_list


def seed_conflict_cache(fingerprint: str,
                        conflicts: Sequence[Conflict] = (),
                        complete: bool = True) -> None:
    """Install a known verdict for the Σ identified by *fingerprint*.

    Used by the parallel worker initializer: the parent checks Σ once,
    ships ``(fingerprint, verdict)`` in the init blob, and each worker
    seeds its own per-process cache — so the check provably runs once
    per Σ rather than once per worker.
    """
    _VERDICT_CACHE[fingerprint] = (complete, tuple(conflicts))


def clear_conflict_cache() -> None:
    """Drop every cached verdict (tests and long-lived services that
    churn through many rule sets)."""
    _VERDICT_CACHE.clear()


def is_consistent(rules: RuleInput, method: str = "characterize",
                  schema: Optional[Schema] = None) -> bool:
    """Is Σ consistent?  (Theorem 1: decidable in PTIME.)"""
    return not find_conflicts(rules, method=method, schema=schema,
                              first_only=True)


class AssuranceHazard(NamedTuple):
    """A triple that can defeat pairwise consistency checking.

    Discovered by this reproduction's property tests (see
    ``tests/test_prop3_counterexample.py``): the paper's Proposition 3
    ("Σ is consistent iff every pair is") fails when Σ contains

    * two *twin* rules — co-matchable (their evidence patterns agree
      on shared attributes, negatives overlap) and writing the SAME
      fact to the SAME attribute, but over **different evidence
      sets**: both repair the same error, yet they assure different
      attributes; and
    * a *reader* rule whose corrected attribute lies in the evidence
      the ``certifier`` twin assures but the ``alternative`` twin does
      not, and which considers the certifier's evidence value wrong.

    Fire the certifier and the reader is blocked forever; fire the
    alternative and the reader still applies — two fixes, invisible to
    every pairwise test (both of the paper's checkers pass all three
    pairs).  :func:`find_assurance_hazards` flags such triples so the
    Section 5.1 workflow can resolve them (drop either twin).
    """

    certifier: FixingRule
    alternative: FixingRule
    reader: FixingRule

    def describe(self) -> str:
        return ("rules %s and %s write the same fact but assure "
                "different evidence; %s reads an attribute only %s "
                "certifies -- application order decides whether it can "
                "fire" % (self.certifier.name, self.alternative.name,
                          self.reader.name, self.certifier.name))


def find_assurance_hazards(rules: RuleInput) -> List[AssuranceHazard]:
    """Detect the rule triples that escape pairwise checking.

    A conservative *warning* pass, not a decision procedure: every
    reported triple exhibits the structural pattern above, which is
    necessary for the pairwise gap; whether a concrete diverging tuple
    exists additionally depends on the reader's remaining evidence
    being satisfiable.  Run this after :func:`is_consistent` when Σ
    mixes hand-written rules with generated ones (generators in
    :mod:`repro.rulegen` key every rule for one attribute on one fixed
    FD LHS, which cannot produce twins with differing evidence sets).
    """
    rule_list, _ = _rules_and_schema(rules, None)
    hazards: List[AssuranceHazard] = []
    for certifier in rule_list:
        for alternative in rule_list:
            if alternative is certifier:
                continue
            if alternative.attribute != certifier.attribute:
                continue
            if alternative.fact != certifier.fact:
                continue  # different facts: Fig. 4 case 1 handles it
            if not (alternative.negatives & certifier.negatives):
                continue  # twins never co-match: no shared trigger
            if not _evidence_compatible(certifier, alternative):
                continue  # twins never co-match: conflicting evidence
            extra_attrs = (certifier.x_attrs
                           - alternative.x_attrs)
            if not extra_attrs:
                continue
            for reader in rule_list:
                if reader is certifier or reader is alternative:
                    continue
                if reader.attribute not in extra_attrs:
                    continue
                if (certifier.evidence[reader.attribute]
                        in reader.negatives):
                    hazards.append(AssuranceHazard(certifier,
                                                   alternative, reader))
    return hazards


def is_consistent_characterize(rules: RuleInput) -> bool:
    """``isConsist_r`` (Fig. 4) over all pairs."""
    return is_consistent(rules, method="characterize")


def is_consistent_enumerate(rules: RuleInput,
                            schema: Optional[Schema] = None) -> bool:
    """``isConsist_t`` (Section 5.2.1) over all pairs."""
    return is_consistent(rules, method="enumerate", schema=schema)
