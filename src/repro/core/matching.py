"""Match and proper-application predicates (Section 3.2).

These helpers implement the *repairing semantics* discipline on top of
the raw match/apply primitives of :class:`~repro.core.rule.FixingRule`:

* ``t ⊢ φ`` — the tuple matches the rule (delegated to the rule);
* ``t →(A,φ) t'`` — φ is **properly applied** w.r.t. the assured
  attribute set ``A``: the tuple matches *and* ``B_φ ∉ A``.

They are shared by both repair algorithms, the consistency checkers
(which chase candidate tuples), and the tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from ..relational import Row
from .rule import FixingRule


def properly_applicable(rule: FixingRule, row: Row,
                        assured: Set[str]) -> bool:
    """``t →(A,φ)``: *rule* matches *row* and ``B_φ`` is not assured."""
    return rule.attribute not in assured and rule.matches(row)


def matching_rules(row: Row,
                   rules: Iterable[FixingRule]) -> List[FixingRule]:
    """All rules that *row* matches (``t ⊢ φ``), in input order."""
    return [rule for rule in rules if rule.matches(row)]


def first_proper(row: Row, rules: Sequence[FixingRule],
                 assured: Set[str]) -> Optional[FixingRule]:
    """The first rule (in sequence order) properly applicable to *row*."""
    for rule in rules:
        if properly_applicable(rule, row, assured):
            return rule
    return None


def is_fixpoint(row: Row, rules: Iterable[FixingRule],
                assured: Set[str]) -> bool:
    """Condition (2) of a fix: no rule can be properly applied."""
    return all(not properly_applicable(rule, row, assured)
               for rule in rules)
