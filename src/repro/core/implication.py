"""Implication analysis of fixing rules (Section 4.3).

Σ *implies* φ (``Σ |= φ``) iff

1. Σ ∪ {φ} is consistent, and
2. for every tuple ``t``, the unique fix of ``t`` by Σ equals the
   unique fix by Σ ∪ {φ} — i.e. φ is redundant.

Theorem 2: the problem is coNP-complete in general and PTIME for a
fixed schema.  The upper bound rests on a **small-model property**: it
suffices to check tuples whose values are drawn from the constants
appearing in the rules (plus, per attribute, one fresh symbol standing
for "any other value").  :func:`implies` enumerates exactly that model
space; the enumeration is exponential in the number of *mentioned*
attributes — as the coNP bound says it must be in the worst case — so
it takes a ``max_tuples`` budget and raises
:class:`~repro.errors.BudgetExceededError` rather than running away.

:func:`minimize` uses :func:`implies` to strip redundant rules, the
practical motivation the paper gives for the analysis.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Union

from ..errors import BudgetExceededError
from ..relational import Row, Schema
from .consistency import OUT_OF_DOMAIN, is_consistent
from .repair import chase_repair
from .rule import FixingRule
from .ruleset import RuleSet

RuleInput = Union[RuleSet, Sequence[FixingRule]]


def _small_model_pools(schema: Schema,
                       rules: Sequence[FixingRule]) -> Dict[str, List[str]]:
    """Per-attribute value pools for the small-model enumeration.

    Every constant a rule mentions at an attribute (evidence value,
    negative pattern, or fact — facts matter here because a cascade can
    re-read a written value) plus one out-of-domain symbol.
    """
    pools: Dict[str, Set[str]] = {name: set()
                                  for name in schema.attribute_names}
    for rule in rules:
        for attr, value in rule.evidence.items():
            pools[attr].add(value)
        pools[rule.attribute].update(rule.negatives)
        pools[rule.attribute].add(rule.fact)
    return {attr: sorted(values) + [OUT_OF_DOMAIN]
            for attr, values in pools.items()}


def _model_size(pools: Dict[str, List[str]]) -> int:
    size = 1
    for values in pools.values():
        size *= len(values)
    return size


def iter_small_model(schema: Schema, rules: Sequence[FixingRule],
                     max_tuples: Optional[int] = 1_000_000):
    """Yield every tuple of the small model for *rules*.

    Attributes no rule mentions contribute only the out-of-domain
    symbol, so they do not inflate the product.
    """
    pools = _small_model_pools(schema, rules)
    if max_tuples is not None:
        size = _model_size(pools)
        if size > max_tuples:
            raise BudgetExceededError(
                "small model has %d tuples, above the budget of %d; "
                "raise max_tuples or restrict the rule set"
                % (size, max_tuples))
    names = schema.attribute_names
    for combo in itertools.product(*(pools[name] for name in names)):
        yield Row(schema, list(combo))


def implies(rules: RuleInput, candidate: FixingRule,
            schema: Optional[Schema] = None,
            max_tuples: Optional[int] = 1_000_000) -> bool:
    """Decide ``Σ |= φ`` via the small-model property.

    Parameters
    ----------
    rules:
        A *consistent* rule set Σ.  (If Σ itself is inconsistent the
        implication question is not well-posed; we raise ValueError.)
    candidate:
        The rule φ to test for redundancy.
    schema:
        Required when *rules* is a plain sequence.
    max_tuples:
        Enumeration budget; ``None`` disables the guard.
    """
    if isinstance(rules, RuleSet):
        base_rules = rules.rules()
        schema = rules.schema
    else:
        base_rules = list(rules)
        if schema is None:
            raise ValueError("schema is required when rules is a sequence")
    if not is_consistent(base_rules):
        raise ValueError("implication is defined only for consistent Σ")

    extended = base_rules + [candidate]
    # Condition (i): Σ ∪ {φ} must itself be consistent.
    if not is_consistent(extended):
        return False
    # Condition (ii): identical fixes over the small model.
    for row in iter_small_model(schema, extended, max_tuples=max_tuples):
        fix_base = chase_repair(row, base_rules)
        fix_ext = chase_repair(row, extended)
        if fix_base.row != fix_ext.row:
            return False
    return True


def minimize(rules: RuleSet,
             max_tuples: Optional[int] = 1_000_000) -> RuleSet:
    """Remove rules implied by the rest of Σ (greedy, order-stable).

    Scans rules in insertion order; a rule is dropped iff the remaining
    set implies it.  The result is consistent and fix-equivalent to the
    input on the small model.
    """
    kept = rules.rules()
    changed = True
    while changed:
        changed = False
        for i, rule in enumerate(kept):
            rest = kept[:i] + kept[i + 1:]
            if not rest:
                continue
            if implies(rest, rule, schema=rules.schema,
                       max_tuples=max_tuples):
                kept = rest
                changed = True
                break
    return RuleSet(rules.schema, kept)
