"""Rule (de)serialization.

Rules travel as JSON so they can be version-controlled, reviewed by the
experts of the Section 5.1 workflow, and fed to the CLI:

.. code-block:: json

    {
      "schema": {"name": "Travel",
                 "attributes": ["name", "country", "capital", "city", "conf"]},
      "rules": [
        {"name": "phi1",
         "evidence": {"country": "China"},
         "attribute": "capital",
         "negatives": ["Shanghai", "Hongkong"],
         "fact": "Beijing"}
      ]
    }

:func:`format_rule` renders the paper's φ notation for logs and docs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import SerializationError
from ..relational import Schema
from .rule import FixingRule
from .ruleset import RuleSet

PathLike = Union[str, Path]


def rule_to_dict(rule: FixingRule) -> dict:
    """A JSON-ready dictionary for one rule."""
    return {
        "name": rule.name,
        "evidence": dict(sorted(rule.evidence.items())),
        "attribute": rule.attribute,
        "negatives": sorted(rule.negatives),
        "fact": rule.fact,
    }


def rule_from_dict(payload: dict) -> FixingRule:
    """Inverse of :func:`rule_to_dict`; validates structure."""
    try:
        return FixingRule(
            evidence=payload["evidence"],
            attribute=payload["attribute"],
            negatives=payload["negatives"],
            fact=payload["fact"],
            name=payload.get("name"),
        )
    except KeyError as exc:
        raise SerializationError("rule JSON is missing field %s" % exc)


def ruleset_to_json(rules: RuleSet) -> str:
    """Serialize a rule set (with its schema) to a JSON string."""
    payload = {
        "schema": {
            "name": rules.schema.name,
            "attributes": list(rules.schema.attribute_names),
        },
        "rules": [rule_to_dict(rule) for rule in rules],
    }
    return json.dumps(payload, indent=2)


def ruleset_from_json(text: str) -> RuleSet:
    """Parse a rule set serialized by :func:`ruleset_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError("invalid rule-set JSON: %s" % exc) from exc
    try:
        schema = Schema(payload["schema"]["name"],
                        payload["schema"]["attributes"])
        rule_payloads = payload["rules"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(
            "rule-set JSON must have 'schema' and 'rules' fields: %s"
            % exc) from exc
    rules = RuleSet(schema)
    for item in rule_payloads:
        rules.add(rule_from_dict(item))
    return rules


def save_ruleset(rules: RuleSet, path: PathLike) -> None:
    """Write a rule set to *path* as JSON."""
    Path(path).write_text(ruleset_to_json(rules), encoding="utf-8")


def load_ruleset(path: PathLike) -> RuleSet:
    """Read a rule set written by :func:`save_ruleset`.

    Unreadable files raise :class:`SerializationError` (not a raw
    ``OSError``) so CLI callers report them as clean errors.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise SerializationError("cannot read rule file %s: %s"
                                 % (path, exc)) from exc
    return ruleset_from_json(text)


def format_rule(rule: FixingRule) -> str:
    """The paper's φ notation, e.g.

    ``(([country], [China]), (capital, {Hongkong, Shanghai})) -> Beijing``
    """
    attrs = sorted(rule.evidence)
    values = [rule.evidence[a] for a in attrs]
    negatives = ", ".join(sorted(rule.negatives))
    return ("(([%s], [%s]), (%s, {%s})) -> %s"
            % (", ".join(attrs), ", ".join(values), rule.attribute,
               negatives, rule.fact))


def format_ruleset(rules: RuleSet) -> str:
    """One :func:`format_rule` line per rule, name-prefixed."""
    return "\n".join("%s: %s" % (rule.name, format_rule(rule))
                     for rule in rules)
