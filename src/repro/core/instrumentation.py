"""Operation-count instrumentation for the complexity claims.

Section 6 states cRepair runs in ``O(size(Σ)·|R|)`` per tuple and
lRepair in ``O(size(Σ))``, with each rule examined at most
``|X_φ| + 1`` times.  These are asymptotic claims; this module makes
them *measurable* so tests can check the scaling empirically rather
than trusting wall-clock noise:

* :class:`MatchCounter` — a shared counter of rule-match examinations;
* :func:`counting_rules` — wrap a rule set so every ``matches`` call
  (the unit of work both algorithms spend) increments the counter.

The wrappers are real :class:`~repro.core.rule.FixingRule` objects, so
they flow through ``chase_repair``/``fast_repair`` unchanged.
``tests/test_complexity.py`` uses them to verify that cRepair's
examinations grow linearly with |Σ| while lRepair's stay bounded by
the frontier discipline.

The module also hosts the process-wide counters of the compiled rule
engine (:mod:`repro.core.engine`) and of blocked consistency checking:

* :class:`EngineStats` / :data:`ENGINE_STATS` — rule sets and rules
  compiled, compile/verdict cache hits, rows repaired, consistency
  scans run, and candidate pairs examined vs pruned by the Lemma 4
  blocking of :func:`repro.core.consistency.find_conflicts`;
* :func:`engine_stats` / :func:`reset_engine_stats` — snapshot and
  reset helpers for tests, benchmarks, and monitoring dashboards.

Since the supervised-execution PR it also hosts the counters of the
worker supervision layer (:mod:`repro.core.supervisor`):

* :class:`SupervisorStats` / :data:`SUPERVISOR_STATS` — chunks
  submitted and retried, deadline hits, worker deaths detected,
  workers respawned, poison-chunk bisections, rows isolated into
  quarantine, and degradations to in-process serial execution;
* :func:`supervisor_stats` / :func:`reset_supervisor_stats` — the
  matching snapshot/reset helpers.  Each supervised executor also
  keeps a per-run :class:`SupervisorStats` instance (exposed as
  ``executor.stats`` and, after ``repair_csv_file(workers=N)``, as
  ``session.supervisor_stats``), so a single run's failure history is
  separable from the process-wide totals.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .rule import FixingRule


class MatchCounter:
    """A mutable tally of ``matches`` examinations."""

    __slots__ = ("checks",)

    def __init__(self):
        self.checks = 0

    def reset(self) -> None:
        self.checks = 0

    def __repr__(self) -> str:
        return "MatchCounter(checks=%d)" % self.checks


class CountingRule(FixingRule):
    """A fixing rule that reports each match examination."""

    __slots__ = ("counter",)

    def __init__(self, evidence, attribute, negatives, fact, name,
                 counter: MatchCounter):
        super().__init__(evidence, attribute, negatives, fact, name=name)
        self.counter = counter

    def matches(self, row) -> bool:  # noqa: D102 — inherits contract
        self.counter.checks += 1
        return super().matches(row)


def counting_rules(rules: Iterable[FixingRule],
                   counter: MatchCounter) -> List[FixingRule]:
    """Wrap *rules* so all their match examinations hit *counter*."""
    return [CountingRule(rule.evidence, rule.attribute, rule.negatives,
                         rule.fact, rule.name, counter)
            for rule in rules]


class EngineStats:
    """Process-wide counters of the compiled rule engine.

    All fields are plain integers, bumped from the hot paths at most
    once per unit of work (per compile, per row, per consistency
    scan, per candidate pair) so the accounting itself stays cheap.
    The counters are advisory — they exist so tests can *prove*
    properties like "the consistency check ran once per Σ" and so
    benchmarks can report pruning ratios — and are not synchronized
    across processes (each pool worker has its own instance).
    """

    __slots__ = (
        "rulesets_compiled", "rules_compiled", "compile_cache_hits",
        "rows_repaired", "consistency_checks", "consistency_cache_hits",
        "pairs_examined", "pairs_pruned",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        #: distinct CompiledRuleSet constructions (cache misses)
        self.rulesets_compiled = 0
        #: total rules flattened across those compilations
        self.rules_compiled = 0
        #: compile requests answered from a memoized CompiledRuleSet
        self.compile_cache_hits = 0
        #: tuples pushed through CompiledRuleSet.repair_values/repair_row
        self.rows_repaired = 0
        #: consistency scans actually executed (cache misses)
        self.consistency_checks = 0
        #: consistency verdicts answered from the fingerprint cache
        self.consistency_cache_hits = 0
        #: rule pairs handed to the pair checker by find_conflicts
        self.pairs_examined = 0
        #: rule pairs skipped by Lemma 4 blocking (never materialized)
        self.pairs_pruned = 0

    def snapshot(self) -> Dict[str, int]:
        """The counters as a plain dict (JSON-ready)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return "EngineStats(%s)" % ", ".join(
            "%s=%d" % (name, getattr(self, name))
            for name in self.__slots__)


#: The process-wide engine counter block.
ENGINE_STATS = EngineStats()


def engine_stats() -> Dict[str, int]:
    """Snapshot of :data:`ENGINE_STATS` as a plain dict."""
    return ENGINE_STATS.snapshot()


def reset_engine_stats() -> None:
    """Zero every counter in :data:`ENGINE_STATS` (tests, benchmarks)."""
    ENGINE_STATS.reset()


class SupervisorStats:
    """Counters of the worker supervision layer.

    Every field counts a *failure-path* event, so on a healthy run the
    whole block stays zero — which is itself the property the
    supervision overhead benchmarks assert.  The counters are bumped
    only in the parent process (workers never see this object), so no
    synchronization is needed.
    """

    __slots__ = (
        "chunks_submitted", "chunk_retries", "deadline_hits",
        "worker_deaths", "workers_respawned", "chunks_bisected",
        "rows_isolated", "degradations", "serial_chunks",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        #: chunk submissions to the pool (includes retries/bisections)
        self.chunks_submitted = 0
        #: chunks resubmitted after a deadline hit or worker death
        self.chunk_retries = 0
        #: chunk waits that exceeded the configured chunk_timeout
        self.deadline_hits = 0
        #: worker-process deaths detected by the liveness poll
        self.worker_deaths = 0
        #: workers restarted by pool rebuilds (workers x rebuilds)
        self.workers_respawned = 0
        #: chunks split in half to localize a poison row
        self.chunks_bisected = 0
        #: single rows isolated as poison and routed to the error policy
        self.rows_isolated = 0
        #: falls from pooled to in-process serial execution
        self.degradations = 0
        #: chunks executed in-process after a degradation
        self.serial_chunks = 0

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> Dict[str, int]:
        """The counters as a plain dict (JSON-ready)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def delta(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Counters accumulated since *baseline* (a prior snapshot).

        Missing baseline keys count as zero, so a baseline captured by
        an older release still subtracts cleanly.
        """
        return {name: getattr(self, name) - int(baseline.get(name, 0))
                for name in self.__slots__}

    def __repr__(self) -> str:
        return "SupervisorStats(%s)" % ", ".join(
            "%s=%d" % (name, getattr(self, name))
            for name in self.__slots__)


#: The process-wide supervisor counter block (sums over every
#: supervised executor this process has run).
SUPERVISOR_STATS = SupervisorStats()


def supervisor_stats() -> Dict[str, int]:
    """Snapshot of :data:`SUPERVISOR_STATS` as a plain dict."""
    return SUPERVISOR_STATS.snapshot()


def reset_supervisor_stats() -> None:
    """Zero every counter in :data:`SUPERVISOR_STATS`."""
    SUPERVISOR_STATS.reset()


class SupervisorStatsSession:
    """A baseline-delta view over :data:`SUPERVISOR_STATS`.

    The process-wide block must stay **monotonic** — a ``/metrics``
    scraper differentiates it, and resetting it mid-flight would show
    up as a counter going backwards.  But a serving process also needs
    *attributable* numbers: "how many deadline hits since this serve
    session started / since this request began".  A session solves
    both: it snapshots the block at construction (or :meth:`rebase`)
    and reports only the delta, never mutating the underlying
    counters.  Each pool rebuild is counted exactly once in the
    process-wide block (the supervisor's generation counter guarantees
    single attribution even under concurrent requests), so deltas of
    disjoint windows sum to the process totals — no double count.
    """

    __slots__ = ("_baseline",)

    def __init__(self):
        self._baseline = SUPERVISOR_STATS.snapshot()

    def rebase(self) -> None:
        """Re-anchor the session at the current process-wide totals."""
        self._baseline = SUPERVISOR_STATS.snapshot()

    def snapshot(self) -> Dict[str, int]:
        """Counters accumulated since the session's baseline."""
        return SUPERVISOR_STATS.delta(self._baseline)

    def __repr__(self) -> str:
        return "SupervisorStatsSession(%s)" % ", ".join(
            "%s=%d" % item for item in sorted(self.snapshot().items()))
