"""Operation-count instrumentation for the complexity claims.

Section 6 states cRepair runs in ``O(size(Σ)·|R|)`` per tuple and
lRepair in ``O(size(Σ))``, with each rule examined at most
``|X_φ| + 1`` times.  These are asymptotic claims; this module makes
them *measurable* so tests can check the scaling empirically rather
than trusting wall-clock noise:

* :class:`MatchCounter` — a shared counter of rule-match examinations;
* :func:`counting_rules` — wrap a rule set so every ``matches`` call
  (the unit of work both algorithms spend) increments the counter.

The wrappers are real :class:`~repro.core.rule.FixingRule` objects, so
they flow through ``chase_repair``/``fast_repair`` unchanged.
``tests/test_complexity.py`` uses them to verify that cRepair's
examinations grow linearly with |Σ| while lRepair's stay bounded by
the frontier discipline.

The module also hosts the process-wide counters of the compiled rule
engine (:mod:`repro.core.engine`) and of blocked consistency checking:

* :class:`EngineStats` / :data:`ENGINE_STATS` — rule sets and rules
  compiled, compile/verdict cache hits, rows repaired, consistency
  scans run, and candidate pairs examined vs pruned by the Lemma 4
  blocking of :func:`repro.core.consistency.find_conflicts`;
* :func:`engine_stats` / :func:`reset_engine_stats` — snapshot and
  reset helpers for tests, benchmarks, and monitoring dashboards.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .rule import FixingRule


class MatchCounter:
    """A mutable tally of ``matches`` examinations."""

    __slots__ = ("checks",)

    def __init__(self):
        self.checks = 0

    def reset(self) -> None:
        self.checks = 0

    def __repr__(self) -> str:
        return "MatchCounter(checks=%d)" % self.checks


class CountingRule(FixingRule):
    """A fixing rule that reports each match examination."""

    __slots__ = ("counter",)

    def __init__(self, evidence, attribute, negatives, fact, name,
                 counter: MatchCounter):
        super().__init__(evidence, attribute, negatives, fact, name=name)
        self.counter = counter

    def matches(self, row) -> bool:  # noqa: D102 — inherits contract
        self.counter.checks += 1
        return super().matches(row)


def counting_rules(rules: Iterable[FixingRule],
                   counter: MatchCounter) -> List[FixingRule]:
    """Wrap *rules* so all their match examinations hit *counter*."""
    return [CountingRule(rule.evidence, rule.attribute, rule.negatives,
                         rule.fact, rule.name, counter)
            for rule in rules]


class EngineStats:
    """Process-wide counters of the compiled rule engine.

    All fields are plain integers, bumped from the hot paths at most
    once per unit of work (per compile, per row, per consistency
    scan, per candidate pair) so the accounting itself stays cheap.
    The counters are advisory — they exist so tests can *prove*
    properties like "the consistency check ran once per Σ" and so
    benchmarks can report pruning ratios — and are not synchronized
    across processes (each pool worker has its own instance).
    """

    __slots__ = (
        "rulesets_compiled", "rules_compiled", "compile_cache_hits",
        "rows_repaired", "consistency_checks", "consistency_cache_hits",
        "pairs_examined", "pairs_pruned",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        #: distinct CompiledRuleSet constructions (cache misses)
        self.rulesets_compiled = 0
        #: total rules flattened across those compilations
        self.rules_compiled = 0
        #: compile requests answered from a memoized CompiledRuleSet
        self.compile_cache_hits = 0
        #: tuples pushed through CompiledRuleSet.repair_values/repair_row
        self.rows_repaired = 0
        #: consistency scans actually executed (cache misses)
        self.consistency_checks = 0
        #: consistency verdicts answered from the fingerprint cache
        self.consistency_cache_hits = 0
        #: rule pairs handed to the pair checker by find_conflicts
        self.pairs_examined = 0
        #: rule pairs skipped by Lemma 4 blocking (never materialized)
        self.pairs_pruned = 0

    def snapshot(self) -> Dict[str, int]:
        """The counters as a plain dict (JSON-ready)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return "EngineStats(%s)" % ", ".join(
            "%s=%d" % (name, getattr(self, name))
            for name in self.__slots__)


#: The process-wide engine counter block.
ENGINE_STATS = EngineStats()


def engine_stats() -> Dict[str, int]:
    """Snapshot of :data:`ENGINE_STATS` as a plain dict."""
    return ENGINE_STATS.snapshot()


def reset_engine_stats() -> None:
    """Zero every counter in :data:`ENGINE_STATS` (tests, benchmarks)."""
    ENGINE_STATS.reset()
