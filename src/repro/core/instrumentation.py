"""Operation-count instrumentation for the complexity claims.

Section 6 states cRepair runs in ``O(size(Σ)·|R|)`` per tuple and
lRepair in ``O(size(Σ))``, with each rule examined at most
``|X_φ| + 1`` times.  These are asymptotic claims; this module makes
them *measurable* so tests can check the scaling empirically rather
than trusting wall-clock noise:

* :class:`MatchCounter` — a shared counter of rule-match examinations;
* :func:`counting_rules` — wrap a rule set so every ``matches`` call
  (the unit of work both algorithms spend) increments the counter.

The wrappers are real :class:`~repro.core.rule.FixingRule` objects, so
they flow through ``chase_repair``/``fast_repair`` unchanged.
``tests/test_complexity.py`` uses them to verify that cRepair's
examinations grow linearly with |Σ| while lRepair's stay bounded by
the frontier discipline.
"""

from __future__ import annotations

from typing import Iterable, List

from .rule import FixingRule


class MatchCounter:
    """A mutable tally of ``matches`` examinations."""

    __slots__ = ("checks",)

    def __init__(self):
        self.checks = 0

    def reset(self) -> None:
        self.checks = 0

    def __repr__(self) -> str:
        return "MatchCounter(checks=%d)" % self.checks


class CountingRule(FixingRule):
    """A fixing rule that reports each match examination."""

    __slots__ = ("counter",)

    def __init__(self, evidence, attribute, negatives, fact, name,
                 counter: MatchCounter):
        super().__init__(evidence, attribute, negatives, fact, name=name)
        self.counter = counter

    def matches(self, row) -> bool:  # noqa: D102 — inherits contract
        self.counter.checks += 1
        return super().matches(row)


def counting_rules(rules: Iterable[FixingRule],
                   counter: MatchCounter) -> List[FixingRule]:
    """Wrap *rules* so all their match examinations hit *counter*."""
    return [CountingRule(rule.evidence, rule.attribute, rule.negatives,
                         rule.fact, rule.name, counter)
            for rule in rules]
