"""Repair algorithms (Section 6 of the paper).

Two tuple-level algorithms plus a table-level driver:

* :func:`chase_repair` — ``cRepair`` (Fig. 6).  A straightforward
  chase: repeatedly scan the unused rules, properly apply any that
  fires, until a fixpoint.  ``O(size(Σ)·|R|)`` per tuple.
* :func:`fast_repair` — ``lRepair`` (Fig. 7).  ``O(size(Σ))`` per
  tuple: each rule is examined at most ``|X_φ| + 1`` times.  Since the
  engine consolidation this is a thin adapter over
  :class:`repro.core.engine.CompiledRuleSet` — the same compiled hot
  path every other driver (table, streaming, parallel) executes.
* :func:`repair_table` — applies either algorithm to every row of a
  table, collecting a :class:`TableRepairReport` with full provenance
  (which rule rewrote which cell from what to what).  The serial fast
  path compiles Σ once and chases raw cell lists, so its throughput
  matches the per-worker throughput of the parallel executor.

Both algorithms implement the *proper application* discipline of
Section 3.2: applying φ rewrites ``t[B_φ] := tp+[B_φ]`` and marks
``X_φ ∪ {B_φ}`` as assured; assured attributes are never rewritten
again.  When Σ is consistent the result is the unique fix of the tuple
(Church–Rosser property); the two algorithms then agree by theorem —
and by the property tests in ``tests/test_properties.py``.
"""

from __future__ import annotations

import random
import warnings
from typing import (Dict, FrozenSet, List, NamedTuple, Optional, Sequence,
                    Set, Tuple, Union)

from ..errors import InconsistentRulesError
from ..relational import Row, Table
from .engine import CompiledRuleSet, compile_for_schema
from .indexes import HashCounters, InvertedIndex
from .matching import properly_applicable
from .rule import FixingRule
from .ruleset import RuleSet

RuleInput = Union[RuleSet, Sequence[FixingRule]]


class AppliedFix(NamedTuple):
    """Provenance of one rule application."""

    rule: FixingRule
    attribute: str
    old_value: str
    new_value: str


class RepairResult(NamedTuple):
    """Outcome of repairing one tuple.

    ``row`` is a new Row (the input is never mutated by the public
    functions); ``applied`` lists rule applications in chase order;
    ``assured`` is the final assured-attribute set ``A``.
    """

    row: Row
    applied: Tuple[AppliedFix, ...]
    assured: FrozenSet[str]

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def _as_rule_list(rules: RuleInput) -> List[FixingRule]:
    if isinstance(rules, RuleSet):
        return rules.rules()
    return list(rules)


def chase_repair(row: Row, rules: RuleInput,
                 order: Optional[Sequence[int]] = None,
                 rng: Optional[random.Random] = None) -> RepairResult:
    """``cRepair`` (Fig. 6): chase *row* with *rules* to a fixpoint.

    Parameters
    ----------
    row:
        The tuple to repair; not mutated.
    rules:
        A consistent set Σ of fixing rules.  (Consistency is the
        caller's responsibility — on an inconsistent set the result
        depends on application order, exactly as the paper warns.)
    order:
        Optional permutation of rule indices controlling the scan
        order.  The default is input order.  With a consistent Σ the
        result is order-independent; the parameter exists so tests can
        *verify* that (Church–Rosser).
    rng:
        Alternative to *order*: shuffle the scan order randomly.
    """
    rule_list = _as_rule_list(rules)
    if order is not None:
        rule_list = [rule_list[i] for i in order]
    elif rng is not None:
        rule_list = list(rule_list)
        rng.shuffle(rule_list)

    current = row.copy()
    assured: Set[str] = set()
    remaining: List[FixingRule] = list(rule_list)
    applied: List[AppliedFix] = []
    updated = True
    while updated:
        updated = False
        still_unused: List[FixingRule] = []
        for rule in remaining:
            if properly_applicable(rule, current, assured):
                old = current[rule.attribute]
                rule.apply_in_place(current)
                assured.update(rule.touched_attrs)
                applied.append(AppliedFix(rule, rule.attribute, old,
                                          rule.fact))
                updated = True
            else:
                still_unused.append(rule)
        remaining = still_unused
    return RepairResult(current, tuple(applied), frozenset(assured))


def fast_repair(row: Row, rules: RuleInput,
                index: Optional[InvertedIndex] = None,
                counters: Optional[HashCounters] = None,
                backend: str = "row") -> RepairResult:
    """``lRepair`` (Fig. 7): repair *row* through the compiled engine.

    Parameters
    ----------
    row:
        The tuple to repair; not mutated.
    rules:
        A consistent set Σ.  Pass a :class:`~repro.core.ruleset.
        RuleSet` when repairing many tuples — its compiled form is
        memoized, so the ``O(size(Σ))`` compilation is paid once.
        Ignored when *index* is given except that they should describe
        the same Σ.
    index:
        A prebuilt :class:`InvertedIndex` over Σ (the historical
        amortization vehicle).  The compiled engine supersedes it —
        the index now merely memoizes a
        :class:`~repro.core.engine.CompiledRuleSet` on first use —
        but the parameter keeps working for existing callers.
    counters:
        Accepted for backward compatibility and unused: the engine
        keeps its evidence counters in a per-row dict, so there is no
        reusable counter state to share.
    backend:
        ``"row"`` (default, also what ``"auto"`` resolves to for a
        single tuple) runs the compiled per-row engine;
        ``"columnar"`` routes through the dictionary-encoded bulk
        engine (:mod:`repro.core.columnar`) — same
        :class:`RepairResult` by theorem and by the differential
        harness, mainly useful for pinning a backend in tests.

    Each rule enters the frontier Γ at most once (when its evidence
    counter completes) and leaves permanently once examined, applied or
    not — see the correctness argument accompanying Fig. 7.
    """
    del counters  # superseded by the engine's per-row counter dict
    if backend not in VALID_BACKENDS:
        raise ValueError(
            "unknown backend %r; valid choices are %s"
            % (backend, ", ".join(repr(b) for b in VALID_BACKENDS)))
    if backend == "columnar":
        from .columnar import columnar_repair_table
        report = columnar_repair_table(
            Table.from_trusted_rows(row.schema, [row]), rules)
        return report.row_results[0]
    if index is not None:
        compiled = index._compiled
        if compiled is None or not compiled.compatible_with(row.schema):
            compiled = CompiledRuleSet(row.schema, list(index.rules))
            index._compiled = compiled
        return compiled.repair_row(row)
    return compile_for_schema(row.schema, rules).repair_row(row)


class TableRepairReport:
    """Aggregate outcome of repairing a whole table.

    Attributes
    ----------
    table:
        The repaired table (a new instance; the input is untouched).
    row_results:
        One :class:`RepairResult` per row, positionally aligned.
    """

    def __init__(self, table: Table, row_results: List[RepairResult]):
        self.table = table
        self.row_results = row_results

    @property
    def changed_cells(self) -> List[Tuple[int, str]]:
        """Cell addresses rewritten by the repair, in application order."""
        cells: List[Tuple[int, str]] = []
        for i, result in enumerate(self.row_results):
            for fix in result.applied:
                cells.append((i, fix.attribute))
        return cells

    @property
    def total_applications(self) -> int:
        return sum(len(result.applied) for result in self.row_results)

    def applications_by_rule(self) -> Dict[str, int]:
        """How many cells each rule corrected, keyed by rule name.

        This is the quantity plotted in Fig. 12(a) (errors corrected by
        every fixing rule).
        """
        counts: Dict[str, int] = {}
        for result in self.row_results:
            for fix in result.applied:
                counts[fix.rule.name] = counts.get(fix.rule.name, 0) + 1
        return counts

    def provenance(self) -> List[Dict[str, str]]:
        """The full repair log as JSON-ready records, one per applied
        fix, in application order — the audit trail a production
        deployment should persist alongside the repaired data."""
        records: List[Dict[str, str]] = []
        for i, result in enumerate(self.row_results):
            for fix in result.applied:
                records.append({
                    "row": str(i),
                    "attribute": fix.attribute,
                    "old_value": fix.old_value,
                    "new_value": fix.new_value,
                    "rule": fix.rule.name,
                })
        return records

    def __repr__(self) -> str:
        return ("TableRepairReport(%d rows, %d cells changed)"
                % (len(self.row_results), self.total_applications))


#: Algorithm names accepted by :func:`repair_table`.
VALID_ALGORITHMS = ("fast", "chase")

#: Backend names accepted by :func:`repair_table` / :func:`fast_repair`.
#: ``"row"`` is the compiled per-row engine; ``"columnar"`` is the
#: dictionary-encoded bulk engine (:mod:`repro.core.columnar`);
#: ``"auto"`` picks columnar for large tables and row otherwise.
VALID_BACKENDS = ("auto", "row", "columnar")


def repair_table(table: Table, rules: RuleInput, algorithm: str = "fast",
                 check_consistency: bool = False,
                 workers: int = 1,
                 chunk_size: Optional[int] = None,
                 supervisor=None,
                 force_workers: bool = False,
                 backend: str = "auto",
                 columnar_threshold: Optional[int] = None
                 ) -> TableRepairReport:
    """Repair every row of *table* with Σ = *rules*.

    Parameters
    ----------
    algorithm:
        ``"fast"`` (lRepair, default) or ``"chase"`` (cRepair).
        Anything else raises :class:`ValueError` naming the valid
        choices — before any expensive work happens.
    check_consistency:
        When ``True``, verify Σ is consistent first and raise
        :class:`~repro.errors.InconsistentRulesError` otherwise.  Off
        by default because the check costs a scan of Σ; when on, the
        verdict is cached on Σ's content fingerprint, so repairing
        many tables with one rule set checks it exactly once.
    workers:
        With ``workers > 1`` (and a platform supporting ``fork``),
        rows are sharded across a process pool — see
        :mod:`repro.core.parallel`.  Tuple repairs are independent, so
        the result is identical to the serial run.  ``workers=None``
        means one worker per CPU.  The pool workers run the compiled
        lRepair kernel; combining ``algorithm="chase"`` with
        ``workers > 1`` therefore falls back to the **serial** chase
        (with a :class:`RuntimeWarning`) rather than silently running
        a different algorithm: on a consistent Σ the two agree
        (Church–Rosser) and the caller should simply use ``"fast"``,
        while on an inconsistent Σ they may genuinely diverge — and a
        caller pinning ``"chase"`` is asking for *that* algorithm's
        answer, not whichever one the pool happens to run.
    chunk_size:
        Rows per shard when parallel; default splits the table into a
        few chunks per worker.
    supervisor:
        Optional :class:`~repro.core.supervisor.SupervisorConfig`
        tuning the parallel path's worker supervision (chunk
        deadlines, retries, poison-row bisection, degradation);
        ignored by the serial path, ``None`` uses the defaults.
    force_workers:
        By default a ``workers > 1`` request on a machine with fewer
        than two *usable* CPUs warns and runs serial (multiprocessing
        is a measured net slowdown there — see
        :func:`~repro.core.parallel.resolve_workers`); ``True``
        forces the pool anyway.  Forcing also disables the IPC
        cost-model fallback below.
    backend:
        Which repair engine executes the rows.  ``"row"`` is the
        compiled per-row engine; ``"columnar"`` dictionary-encodes
        the table and scans evidence patterns as bulk integer-array
        intersections (:mod:`repro.core.columnar`) — same output,
        proven cell-for-cell by the differential harness; ``"auto"``
        (default) picks columnar for serial fast repairs of at least
        :data:`~repro.core.columnar.COLUMNAR_AUTO_THRESHOLD` rows
        (and whenever Σ is not instrumented), row otherwise.  On the
        parallel path the backend selects the chunk transport:
        columnar chunks cross to workers as pickle-free
        shared-memory flat buffers.  ``backend="columnar"`` with
        ``algorithm="chase"`` raises :class:`ValueError` — the
        columnar candidate detector is an lRepair-shaped engine.
    columnar_threshold:
        Overrides the ``backend="auto"`` switch-over row count for
        this call.  ``None`` (default) resolves through
        :func:`~repro.core.columnar.columnar_auto_threshold`, which
        honours the ``REPRO_COLUMNAR_THRESHOLD`` environment variable
        before falling back to the built-in
        :data:`~repro.core.columnar.COLUMNAR_AUTO_THRESHOLD`.  Must
        be an integer >= 1 (:class:`ValueError` otherwise); ignored
        by the explicit ``"row"``/``"columnar"`` backends.

    When ``workers > 1`` is requested but not forced, an IPC cost
    model (:data:`~repro.core.parallel.DEFAULT_COST_MODEL`) predicts
    whether forking beats serial for this row count, transport, and
    usable-CPU budget; a run predicted to lose silently stays serial
    — identical output, strictly faster.
    """
    if algorithm not in VALID_ALGORITHMS:
        raise ValueError(
            "unknown algorithm %r; valid choices are %s"
            % (algorithm, ", ".join(repr(a) for a in VALID_ALGORITHMS)))
    if backend not in VALID_BACKENDS:
        raise ValueError(
            "unknown backend %r; valid choices are %s"
            % (backend, ", ".join(repr(b) for b in VALID_BACKENDS)))
    if backend == "columnar" and algorithm == "chase":
        raise ValueError(
            "backend='columnar' requires algorithm='fast': the "
            "columnar engine is a bulk formulation of lRepair")
    rule_list = _as_rule_list(rules)
    if check_consistency:
        # Imported lazily: consistency checking chases candidate tuples
        # with these same repair primitives.
        from .consistency import find_conflicts_cached
        conflicts = find_conflicts_cached(rules, first_only=True)
        if conflicts:
            raise InconsistentRulesError(
                "rule set is inconsistent: %s" % conflicts[0].describe(),
                conflicts)
    if workers is None or workers > 1:
        if algorithm == "chase":
            warnings.warn(
                "repair_table(algorithm='chase') cannot run parallel: "
                "pool workers execute the compiled lRepair kernel; "
                "running the requested chase serially instead (use "
                "algorithm='fast' for parallel repair)",
                RuntimeWarning, stacklevel=2)
        else:
            from .parallel import (fork_available, forced_workers_env,
                                   parallel_predicted_to_win,
                                   parallel_repair_table, resolve_workers,
                                   shm_available)
            workers = resolve_workers(workers, force_workers)
            if workers > 1 and fork_available() and len(table) > 0:
                if backend == "row":
                    transport = "pickle"
                elif backend == "columnar" and shm_available():
                    transport = "shm"
                else:
                    transport = "auto"
                forced = force_workers or forced_workers_env()
                if forced or parallel_predicted_to_win(
                        len(table), workers, transport):
                    return parallel_repair_table(
                        table, rules, workers=workers,
                        chunk_size=chunk_size,
                        verified_consistent=check_consistency,
                        supervisor=supervisor, transport=transport)
                # The cost model predicts forking loses here (too few
                # rows for the startup + transport overhead); fall
                # through to the serial path — identical output.

    results: List[RepairResult] = []
    if algorithm == "fast":
        from .columnar import columnar_auto_threshold, columnar_repair_table
        if backend == "columnar" or (
                backend == "auto"
                and len(table) >= columnar_auto_threshold(columnar_threshold)
                and not compile_for_schema(table.schema, rules).instrumented):
            return columnar_repair_table(table, rules)
        # One compiled Σ for the whole table; the chase runs over raw
        # cell lists and rows are rebuilt through the trusted
        # constructor — the same hot loop the pool workers execute.
        compiled = compile_for_schema(table.schema, rules)
        if compiled.instrumented:
            repaired_rows: List[Row] = []
            for row in table:
                result = compiled.repair_row(row)
                results.append(result)
                repaired_rows.append(result.row)
            return TableRepairReport(
                Table.from_trusted_rows(table.schema, repaired_rows),
                results)
        schema = table.schema
        from_trusted = Row.from_trusted
        empty_applied: Tuple[AppliedFix, ...] = ()
        empty_assured: FrozenSet[str] = frozenset()
        repaired_rows = []
        repair_values = compiled.repair_values
        for row in table:
            outcome = repair_values(row._cells)
            if outcome is None:
                result = RepairResult(
                    from_trusted(schema, list(row._cells)),
                    empty_applied, empty_assured)
            else:
                new_values, applied = outcome
                result = RepairResult(from_trusted(schema, new_values),
                                      compiled.expand_applied(applied),
                                      compiled.assured_for(applied))
            results.append(result)
            repaired_rows.append(result.row)
        return TableRepairReport(
            Table.from_trusted_rows(schema, repaired_rows), results)

    repaired = Table(table.schema)
    for row in table:
        result = chase_repair(row, rule_list)
        results.append(result)
        repaired.append(result.row)
    return TableRepairReport(repaired, results)
