"""repro — dependable data repairing with fixing rules.

A complete, self-contained implementation of *Towards Dependable Data
Repairing with Fixing Rules* (Wang & Tang, SIGMOD 2014):

* :mod:`repro.core` — fixing rules, consistency / implication
  analyses, conflict resolution, and the cRepair / lRepair algorithms;
* :mod:`repro.relational` — the in-memory relational substrate;
* :mod:`repro.dependencies` — FDs, CFDs, violation detection;
* :mod:`repro.baselines` — Heu, Csm and automated editing rules;
* :mod:`repro.master` — master (reference) data;
* :mod:`repro.datagen` — HOSP/UIS generators and noise injection;
* :mod:`repro.rulegen` — rule generation from FD violations;
* :mod:`repro.evaluation` — precision/recall metrics and the
  experiment harness.

Quickstart::

    from repro import FixingRule, RuleSet, Schema, Table, repair_table

    travel = Schema("Travel", ["name", "country", "capital", "city", "conf"])
    rules = RuleSet(travel, [
        FixingRule({"country": "China"}, "capital",
                   {"Shanghai", "Hongkong"}, "Beijing"),
    ])
    data = Table(travel, [["Alice", "China", "Shanghai", "Hangzhou", "VLDB"]])
    print(repair_table(data, rules).table.to_text())
"""

from .errors import (BudgetExceededError, CheckpointError, DependencyError,
                     InconsistentRulesError, PipelineError, ReproError,
                     RowError, RuleError, SchemaError, SerializationError,
                     TableError)
from .relational import Attribute, Row, Schema, Table, read_csv, write_csv
from .dependencies import FD, parse_fd
from .core import (CompiledRuleSet, FixingRule, RuleSet, chase_repair,
                   compile_ruleset, ensure_consistent, fast_repair,
                   find_conflicts, format_rule, implies, is_consistent,
                   load_ruleset, minimize, repair_table, rules_fingerprint,
                   save_ruleset)
from .evaluation import RepairQuality, evaluate_repair

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SchemaError",
    "TableError",
    "RuleError",
    "InconsistentRulesError",
    "BudgetExceededError",
    "DependencyError",
    "SerializationError",
    "PipelineError",
    "CheckpointError",
    "RowError",
    # relational
    "Attribute",
    "Schema",
    "Row",
    "Table",
    "read_csv",
    "write_csv",
    # dependencies
    "FD",
    "parse_fd",
    # core
    "FixingRule",
    "RuleSet",
    "is_consistent",
    "find_conflicts",
    "implies",
    "minimize",
    "ensure_consistent",
    "chase_repair",
    "fast_repair",
    "repair_table",
    "CompiledRuleSet",
    "compile_ruleset",
    "rules_fingerprint",
    "format_rule",
    "save_ruleset",
    "load_ruleset",
    # evaluation
    "RepairQuality",
    "evaluate_repair",
]
