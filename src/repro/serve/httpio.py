"""Minimal HTTP/1.1 framing over asyncio streams.

The serve daemon deliberately depends on nothing beyond the standard
library, and the standard library's HTTP servers are either
thread-per-connection (``http.server``) or absent for asyncio — so
this module hand-rolls the small slice of HTTP/1.1 the daemon needs:
request-line + headers + ``Content-Length`` bodies in, status + headers
+ body out, with keep-alive.  It is a *server-side* framing layer, not
a general HTTP implementation: no chunked transfer encoding (a request
using it is answered ``411 Length Required``), no multipart, no
continuation lines.

Every limit is explicit because the daemon sits in front of untrusted
clients: an over-long request line, an unbounded header list, or a
body larger than the configured cap each abort the request with a 4xx
instead of buffering without bound.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "render_response",
    "json_response",
]

#: Hard framing limits, independent of the configurable body cap.
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINE = 8192
MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request-level failure with a definite status code.

    Raising one anywhere inside a handler produces a JSON error
    response with *status*, optional extra *headers*, and the message
    as the ``error`` field — the connection survives when keep-alive
    allows it.
    """

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None,
                 payload: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        #: extra JSON fields merged into the error body (e.g. the
        #: conflict list of a rejected ruleset upload)
        self.payload = dict(payload or {})


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: Dict[str, str],
                 headers: Dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.query = query
        #: header names lower-cased; duplicate headers keep the last
        self.headers = headers
        self.body = body

    def json(self) -> object:
        """The body decoded as JSON; :class:`HttpError` 400 on garbage."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, "request body is not valid JSON: %s" % exc)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def __repr__(self) -> str:
        return "Request(%s %s, %d body bytes)" % (self.method, self.path,
                                                  len(self.body))


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise HttpError(400, "truncated request")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line exceeds %d bytes" % limit)
    if len(line) > limit:
        raise HttpError(400, "request line exceeds %d bytes" % limit)
    return line


async def read_request(reader: asyncio.StreamReader,
                       max_body: int) -> Optional[Request]:
    """Parse one request; ``None`` on clean EOF (client closed)."""
    line = await _read_line(reader, MAX_REQUEST_LINE)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader, MAX_HEADER_LINE)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HttpError(400, "truncated headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "more than %d headers" % MAX_HEADERS)

    if headers.get("transfer-encoding", "").lower() not in ("", "identity"):
        raise HttpError(411, "chunked transfer encoding is not supported; "
                             "send Content-Length")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, "bad Content-Length %r" % length_text)
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > max_body:
        raise HttpError(413, "body of %d bytes exceeds the %d-byte limit"
                        % (length, max_body))
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "body shorter than Content-Length")
    return Request(method.upper(), unquote(split.path), query, headers, body)


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    headers: Optional[Dict[str, str]] = None,
                    close: bool = False) -> bytes:
    """Serialize one response, keep-alive by default."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        "HTTP/1.1 %d %s" % (status, reason),
        "Content-Type: %s" % content_type,
        "Content-Length: %d" % len(body),
        "Connection: %s" % ("close" if close else "keep-alive"),
    ]
    for name, value in (headers or {}).items():
        lines.append("%s: %s" % (name, value))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload: dict,
                  headers: Optional[Dict[str, str]] = None,
                  close: bool = False) -> bytes:
    """A JSON body response (the daemon's default shape)."""
    body = (json.dumps(payload, separators=(",", ":"), sort_keys=True)
            .encode("utf-8"))
    return render_response(status, body, headers=headers, close=close)
