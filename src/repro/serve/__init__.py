"""Repair-as-a-service: the hardened ``repro serve`` daemon.

The batch drivers answer "repair this file"; this package answers
"keep repairing whatever shows up, indefinitely, without falling
over".  It layers the paper's per-tuple dependability guarantees
(deterministic, assured fixes under a consistent Σ — Sections 3–6)
with the *process-level* dependability a long-running service needs:

* :mod:`~repro.serve.admission` — bounded concurrency and watermark
  shedding (503 + ``Retry-After``) instead of unbounded queueing;
* :mod:`~repro.serve.breaker` — a circuit breaker that routes around
  a crashing worker pool and probes it back to health;
* :mod:`~repro.serve.registry` — per-tenant hot reload of Σ with
  shadow-slot validation (parse, blocked consistency check, compile)
  and one-step rollback; an inconsistent upload is rejected with the
  old Σ still serving, preserving Theorem 5's uniqueness guarantee
  for every request;
* :mod:`~repro.serve.pool` — a pre-warmed supervised fork pool whose
  tasks name their Σ by content fingerprint;
* :mod:`~repro.serve.server` — the asyncio daemon tying it together
  with per-request deadlines that cancel (not orphan) work, and
  graceful SIGTERM drain.

Everything is standard library only, like the rest of the repo.
"""

from .admission import AdmissionController
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .httpio import HttpError, Request
from .metrics import ServeMetrics, percentile
from .pool import ServePool
from .registry import RulesetRegistry, RulesetRejected, TenantRuleset
from .server import RepairServer, ServeConfig, ServerThread

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "HttpError",
    "Request",
    "ServeMetrics",
    "percentile",
    "ServePool",
    "RulesetRegistry",
    "RulesetRejected",
    "TenantRuleset",
    "RepairServer",
    "ServeConfig",
    "ServerThread",
]
