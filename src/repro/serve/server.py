"""The repair-as-a-service daemon: ``repro serve``.

One asyncio event loop owns admission, routing, the circuit breaker,
and the ruleset registry; repair compute happens off-loop — in the
pre-warmed supervised worker pool (fast path) or the in-process serial
engine (fallback) — via executor threads, so a slow repair never
blocks health checks or metrics scrapes.

The request lifecycle for ``POST /repair``:

1. **Admission.**  Heavy endpoints pass the
   :class:`~repro.serve.admission.AdmissionController`; past the queue
   watermark (or while draining) the request is shed immediately with
   ``503`` and ``Retry-After`` — overload becomes backpressure, not
   latency.
2. **Deadline.**  Every admitted request carries a deadline — the
   configured ``request_timeout``, lowered per-request by an
   ``X-Repro-Timeout`` header.  The deadline propagates into
   :meth:`ChunkSupervisor.run_chunk`, whose pool rebuild *cancels* the
   attempt on expiry (a fork worker cannot be interrupted politely);
   the serial fallback checks it cooperatively between rows.  Either
   way an expired request ends as a clean ``504``, never as orphaned
   work.
3. **Breaker.**  Pool failures (worker crashes, deadline hits) feed
   the :class:`~repro.serve.breaker.CircuitBreaker`; when it opens,
   requests skip the pool and run serially in-process until a
   half-open probe closes it again.
4. **Response.**  The response always carries exactly the admitted
   rows, in order — per-row worker exceptions become ``row_errors``
   entries, not missing rows.

Hot reload (``POST /rulesets/{tenant}``) and rollback are delegated to
the :class:`~repro.serve.registry.RulesetRegistry`: validate in a
shadow slot, swap atomically, keep one previous version.

Graceful drain: :meth:`RepairServer.drain` (wired to SIGTERM by the
CLI) stops admission, waits for in-flight requests up to
``drain_timeout``, then closes the listener and the pool.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import List, NamedTuple, Optional, Tuple

from ..core.consistency import find_conflicts_cached
from ..core.delta import DeltaRepairSession
from ..core.explain import explain_repair
from ..core.serialization import ruleset_from_json
from ..core.supervisor import (ChunkDeadlineError, SupervisorError,
                               WorkerCrashError, WorkerFaultPlan)
from ..errors import SerializationError
from ..relational import Row
from .admission import AdmissionController
from .breaker import CircuitBreaker
from .httpio import HttpError, Request, json_response, read_request, \
    render_response
from .metrics import ServeMetrics
from .pool import ServePool
from .registry import RulesetRegistry, RulesetRejected, TenantRuleset

__all__ = ["ServeConfig", "RepairServer", "ServerThread"]

#: Marker first element of a per-row error outcome (mirrors
#: :data:`repro.core.supervisor.ERROR_MARK` without importing the
#: worker machinery here).
from ..core.supervisor import ERROR_MARK as _ERROR_MARK


class _SerialDeadline(Exception):
    """The in-process fallback ran out of deadline between rows."""


class ServeConfig(NamedTuple):
    """Daemon tuning; every knob has a production-shaped default."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests); the CLI defaults to 8787
    port: int = 0
    #: supervised pool size; 0 disables the pool (serial-only daemon)
    pool_workers: int = 2
    #: heavy requests executing at once
    max_concurrency: int = 8
    #: heavy requests allowed to *wait*; beyond this arrivals are shed
    queue_watermark: int = 16
    #: default per-request deadline, seconds
    request_timeout: float = 30.0
    #: scheduling slack granted on top of the deadline before the
    #: event loop gives up on the executor thread
    grace: float = 2.0
    #: Retry-After hint on shed responses, seconds
    retry_after: float = 1.0
    #: drain budget on SIGTERM, seconds
    drain_timeout: float = 10.0
    #: consecutive pool failures that open the breaker
    breaker_threshold: int = 3
    #: seconds the breaker stays open before half-open probing
    breaker_reset: float = 2.0
    #: concurrent probes admitted while half-open
    breaker_probes: int = 1
    #: request body cap, bytes
    max_body_bytes: int = 8 * 1024 * 1024
    #: supervisor wait-slice for the pool, seconds
    poll_interval: float = 0.05
    #: where validated rulesets are spooled for workers; None: tempdir
    spool_dir: Optional[str] = None
    #: crash-consistent state directory (WAL + snapshots + correction
    #: logs); None runs the daemon ephemeral, exactly as before.  With
    #: a state dir, every acknowledged ruleset upload/rollback and
    #: delta mutation survives a SIGKILL and is rebuilt on boot, with
    #: ``/readyz`` reporting ``recovering`` until replay completes.
    state_dir: Optional[str] = None
    #: worker-side chaos plan (tests only)
    fault_plan: Optional[WorkerFaultPlan] = None

    def validate(self) -> "ServeConfig":
        if self.pool_workers < 0:
            raise ValueError("pool_workers must be >= 0, got %d"
                             % self.pool_workers)
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive, got %r"
                             % (self.request_timeout,))
        if self.grace < 0 or self.retry_after < 0 or self.drain_timeout < 0:
            raise ValueError("grace, retry_after and drain_timeout must "
                             "be >= 0")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1, got %d"
                             % self.max_body_bytes)
        # admission/breaker constructors validate their own knobs
        return self


class RepairServer:
    """One daemon instance: routing + the subsystems it composes."""

    def __init__(self, config: ServeConfig = ServeConfig(),
                 registry: Optional[RulesetRegistry] = None):
        self.config = config.validate()
        self.state_store = None
        if registry is None:
            import os
            spool_dir = config.spool_dir
            if config.state_dir is not None:
                from ..durability import StateStore
                self.state_store = StateStore(config.state_dir)
                if spool_dir is None:
                    # spool + correction logs must live with the state
                    # dir: recovery replays the logs it finds there
                    spool_dir = os.path.join(config.state_dir, "spool")
            if spool_dir is None:
                import tempfile
                spool_dir = tempfile.mkdtemp(prefix="repro-serve-spool-")
            registry = RulesetRegistry(spool_dir,
                                       state_store=self.state_store)
        else:
            self.state_store = registry.state_store
        self.registry = registry
        #: True from bind until snapshot-then-replay recovery finishes;
        #: heavy endpoints answer 503 meanwhile and /readyz says so
        self.recovering = False
        self.recovery_report: Optional[dict] = None
        self.admission = AdmissionController(config.max_concurrency,
                                             config.queue_watermark,
                                             config.retry_after)
        self.breaker = CircuitBreaker(config.breaker_threshold,
                                      config.breaker_reset,
                                      config.breaker_probes)
        self.metrics = ServeMetrics()
        #: pre-warmed at construction so the first request never pays
        #: pool startup; None when configured serial-only
        self.pool: Optional[ServePool] = None
        if config.pool_workers > 0:
            self.pool = ServePool(config.pool_workers,
                                  poll_interval=config.poll_interval,
                                  fault_plan=config.fault_plan)
        self._server: Optional[asyncio.AbstractServer] = None
        #: per-tenant incremental sessions, created lazily by the
        #: first POST /repair/delta; kept in lock-step with the
        #: registry's active slot on hot-reload and rollback
        self._delta_sessions: dict = {}
        #: sessions mutate in executor threads — one writer at a time
        self._delta_lock = threading.Lock()
        #: open keep-alive connections, cancelled at the end of drain
        self._connections: set = set()
        self.draining = False
        self._drained = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        needs_recovery = (self.state_store is not None
                          and not self.state_store.is_empty())
        if needs_recovery:
            # flip before binding so no request can race the replay
            self.recovering = True
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        if needs_recovery:
            loop = asyncio.get_running_loop()
            self._recovery_task = loop.create_task(self._recover())

    async def _recover(self) -> None:
        """Snapshot-then-replay rebuild, off-loop; /readyz reports
        ``recovering`` until this completes."""
        from ..durability import RecoveryManager
        loop = asyncio.get_running_loop()

        def rebuild() -> dict:
            manager = RecoveryManager(self.state_store)
            return manager.rebuild(self.registry, self._delta_sessions,
                                   durable_logs=True)

        try:
            self.recovery_report = await loop.run_in_executor(None,
                                                              rebuild)
        except Exception as exc:
            self.recovery_report = {"ok": False,
                                    "problems": ["%s: %s"
                                                 % (type(exc).__name__,
                                                    exc)]}
        finally:
            self.recovering = False

    async def serve_forever(self) -> None:
        """Run until :meth:`drain` completes (the CLI entry point)."""
        if self._server is None:
            await self.start()
        await self._drained.wait()

    async def drain(self) -> bool:
        """Stop admission, wait out in-flight work, shut down.

        Returns True when every in-flight request finished inside the
        drain budget; False when the budget expired and the pool was
        torn down with work still running.
        """
        if self.draining:
            return True
        self.draining = True
        self.admission.begin_drain()
        clean = await self.admission.wait_idle(self.config.drain_timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # idle keep-alive connections are parked in read_request();
        # nothing new can be admitted, so cut them loose
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        if self.pool is not None:
            # close()/terminate() join worker processes; keep that off
            # the event loop.
            loop = asyncio.get_running_loop()
            if clean:
                await loop.run_in_executor(None, self.pool.close)
            else:
                await loop.run_in_executor(None, self.pool.terminate)
        if self.state_store is not None:
            self.state_store.close()
        self._drained.set()
        return clean

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader,
                                                 self.config.max_body_bytes)
                except HttpError as exc:
                    # framing errors poison the byte stream; answer and
                    # close rather than misparse what follows
                    writer.write(self._error_bytes(exc, close=True))
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self._dispatch(request)
                if not request.keep_alive:
                    # re-render with Connection: close is not worth it;
                    # just stop reading after the write
                    writer.write(response)
                    await writer.drain()
                    return
                writer.write(response)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # drain cut this idle connection loose
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    def _error_bytes(self, exc: HttpError, close: bool = False) -> bytes:
        self.metrics.record_response(exc.status)
        payload = dict(exc.payload)
        payload["error"] = exc.message
        return json_response(exc.status, payload, headers=exc.headers,
                             close=close)

    async def _dispatch(self, request: Request) -> bytes:
        endpoint = self._route_name(request)
        self.metrics.record_request(endpoint)
        try:
            status, payload, headers, raw = await self._route(request)
        except HttpError as exc:
            return self._error_bytes(exc)
        except RulesetRejected as exc:
            http = HttpError(exc.status, str(exc), payload={
                "conflicts": [conflict.describe()
                              for conflict in exc.conflicts],
            })
            return self._error_bytes(http)
        except Exception as exc:  # the daemon must outlive any request
            http = HttpError(500, "internal error: %s: %s"
                             % (type(exc).__name__, exc))
            return self._error_bytes(http)
        self.metrics.record_response(status)
        if raw is not None:
            return render_response(status, raw, content_type="text/plain",
                                   headers=headers)
        return json_response(status, payload, headers=headers)

    @staticmethod
    def _route_name(request: Request) -> str:
        path = request.path
        if path.startswith("/rulesets"):
            return "/rulesets"
        return path

    async def _route(self, request: Request
                     ) -> Tuple[int, dict, Optional[dict], Optional[bytes]]:
        method, path = request.method, request.path

        # light endpoints: never admitted, never shed — they are how
        # you observe an overloaded or draining daemon
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok"}, None, None
        if path == "/readyz" and method == "GET":
            if self.draining:
                raise HttpError(503, "draining")
            if self.recovering:
                raise HttpError(503, "recovering",
                                payload={"status": "recovering"})
            if len(self.registry) == 0:
                raise HttpError(503, "no rulesets loaded")
            ready = {"status": "ready",
                     "tenants": sorted(self.registry.tenants())}
            if self.recovery_report is not None:
                ready["recovered"] = {
                    "ok": self.recovery_report.get("ok"),
                    "tenants": len(self.recovery_report.get("tenants",
                                                            ())),
                    "sessions": len(self.recovery_report.get("sessions",
                                                             ())),
                }
            return 200, ready, None, None
        if path == "/metrics" and method == "GET":
            text = self.metrics.render(admission=self.admission.snapshot(),
                                       breaker=self.breaker.snapshot(),
                                       registry={
                                           "tenants": len(self.registry),
                                           "reloads_total":
                                               self.registry.reloads_total,
                                           "rejects_total":
                                               self.registry.rejects_total,
                                           "rollbacks_total":
                                               self.registry.rollbacks_total,
                                       })
            return 200, {}, None, text.encode("utf-8")
        if path in ("/rulesets", "/repair/delta") and method == "GET" \
                and self.recovering:
            # these read the very state replay is rebuilding; health
            # and metrics stay observable meanwhile
            raise HttpError(503, "recovering: replaying durable state",
                            payload={"status": "recovering"})
        if path == "/rulesets" and method == "GET":
            return 200, {"tenants": self.registry.tenants()}, None, None
        if path == "/repair/delta" and method == "GET":
            return self._delta_status(request)

        # heavy endpoints: admission-controlled
        handler = None
        if method == "POST":
            if path == "/repair/delta":
                handler = self._handle_repair_delta
            elif path == "/repair":
                handler = self._handle_repair
            elif path == "/check":
                handler = self._handle_check
            elif path == "/explain":
                handler = self._handle_explain
            elif path.startswith("/rulesets/"):
                handler = self._handle_rulesets
        if handler is None:
            raise HttpError(404 if path not in
                            ("/repair", "/repair/delta", "/check",
                             "/explain") else 405,
                            "no route for %s %s" % (method, path))

        if self.recovering:
            raise HttpError(
                503, "recovering: replaying durable state",
                headers={"Retry-After":
                         "%d" % max(1, round(self.admission.retry_after))})
        if not self.admission.try_begin():
            raise HttpError(
                503,
                "over capacity" if self.admission.accepting else "draining",
                headers={"Retry-After":
                         "%d" % max(1, round(self.admission.retry_after))})
        async with self.admission:
            return await handler(request)

    # -- heavy handlers ------------------------------------------------------

    def _tenant_entry(self, request: Request) -> TenantRuleset:
        tenant = request.query.get("tenant", "default")
        try:
            return self.registry.get(tenant)
        except KeyError as exc:
            raise HttpError(404, str(exc))

    def _deadline_budget(self, request: Request) -> float:
        budget = self.config.request_timeout
        header = request.headers.get("x-repro-timeout")
        if header is not None:
            try:
                requested = float(header)
            except ValueError:
                raise HttpError(400, "bad X-Repro-Timeout %r" % header)
            if requested <= 0:
                raise HttpError(400, "X-Repro-Timeout must be positive")
            budget = min(budget, requested)
        return budget

    @staticmethod
    def _coerce_row(item, entry: TenantRuleset, index: int) -> List[str]:
        """One posted row (list or object) to schema-ordered cells."""
        names = list(entry.ruleset.schema.attribute_names)
        if isinstance(item, dict):
            try:
                cells = [item[name] for name in names]
            except KeyError as exc:
                raise HttpError(400, "row %d is missing attribute %s"
                                % (index, exc))
        elif isinstance(item, list):
            if len(item) != len(names):
                raise HttpError(400, "row %d has %d cells; schema %s has "
                                "%d attributes"
                                % (index, len(item),
                                   entry.ruleset.schema.name, len(names)))
            cells = item
        else:
            raise HttpError(400, "row %d must be a list or an object, "
                            "got %s" % (index, type(item).__name__))
        coerced = []
        for cell in cells:
            if isinstance(cell, str):
                coerced.append(cell)
            elif isinstance(cell, (int, float)) and \
                    not isinstance(cell, bool):
                coerced.append(str(cell))
            else:
                raise HttpError(400, "row %d contains a non-scalar cell"
                                % index)
        return coerced

    def _parse_rows(self, request: Request,
                    entry: TenantRuleset) -> List[List[str]]:
        body = request.json()
        if not isinstance(body, dict) or "rows" not in body:
            raise HttpError(400, 'body must be {"rows": [...]}')
        raw_rows = body["rows"]
        if not isinstance(raw_rows, list):
            raise HttpError(400, '"rows" must be a list')
        return [self._coerce_row(item, entry, index)
                for index, item in enumerate(raw_rows)]

    def _serial_repair(self, entry: TenantRuleset, rows: List[List[str]],
                       deadline: float) -> list:
        """In-process fallback with a cooperative per-row deadline."""
        kernel = entry.compiled
        out = []
        for values in rows:
            if time.monotonic() >= deadline:
                raise _SerialDeadline()
            try:
                out.append(kernel.repair_values(values))
            except Exception as exc:
                out.append((_ERROR_MARK, type(exc).__name__, str(exc)))
        return out

    async def _handle_repair(self, request: Request):
        started = time.monotonic()
        entry = self._tenant_entry(request)
        budget = self._deadline_budget(request)
        deadline = started + budget
        rows = self._parse_rows(request, entry)
        loop = asyncio.get_running_loop()
        engine = "serial"
        outcomes = None

        if self.pool is not None and rows and self.breaker.allow():
            engine = "pool"
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise HttpError(504, "deadline expired before execution")
            try:
                outcomes = await asyncio.wait_for(
                    loop.run_in_executor(
                        None, self.pool.repair, entry.fingerprint,
                        entry.spool_path, rows, remaining),
                    timeout=remaining + self.config.grace)
                self.breaker.record_success()
            except (ChunkDeadlineError, asyncio.TimeoutError):
                self.breaker.record_failure()
                self.metrics.timeouts_total += 1
                raise HttpError(504, "repair exceeded its %.3fs deadline; "
                                "the attempt was cancelled" % budget)
            except (WorkerCrashError, SupervisorError) as exc:
                # pool is sick but the request still has budget: fail
                # over to the in-process engine for *this* request and
                # let the breaker decide about the next ones
                self.breaker.record_failure()
                self.metrics.fallbacks_total += 1
                engine = "serial+fallback"
                outcomes = None
                if time.monotonic() >= deadline:
                    self.metrics.timeouts_total += 1
                    raise HttpError(504, "worker pool failed (%s) and the "
                                    "deadline is spent" % type(exc).__name__)

        if outcomes is None:
            try:
                outcomes = await asyncio.wait_for(
                    loop.run_in_executor(None, self._serial_repair, entry,
                                         rows, deadline),
                    timeout=(deadline - time.monotonic())
                    + self.config.grace)
            except (_SerialDeadline, asyncio.TimeoutError):
                self.metrics.timeouts_total += 1
                raise HttpError(504, "repair exceeded its %.3fs deadline"
                                % budget)

        out_rows: List[List[str]] = []
        row_errors = []
        rows_changed = 0
        cells_changed = 0
        for index, (values, encoded) in enumerate(zip(rows, outcomes)):
            if encoded is None:
                out_rows.append(values)
            elif isinstance(encoded, tuple) and len(encoded) == 3 \
                    and encoded[0] == _ERROR_MARK:
                out_rows.append(values)  # errored rows pass through
                row_errors.append({"index": index,
                                   "error_type": encoded[1],
                                   "message": encoded[2]})
            else:
                new_values, _applied = encoded
                new_values = list(new_values)
                rows_changed += 1
                cells_changed += sum(1 for old, new
                                     in zip(values, new_values)
                                     if old != new)
                out_rows.append(new_values)
        duration = time.monotonic() - started
        self.metrics.record_repair(len(rows), cells_changed,
                                   len(row_errors), duration,
                                   "pool" if engine == "pool" else "serial")
        return 200, {
            "tenant": request.query.get("tenant", "default"),
            "fingerprint": entry.fingerprint,
            "engine": engine,
            "rows": out_rows,
            "rows_changed": rows_changed,
            "cells_changed": cells_changed,
            "row_errors": row_errors,
        }, None, None

    # -- incremental (delta) repair ------------------------------------------

    def _delta_session(self, tenant: str,
                       entry: TenantRuleset) -> DeltaRepairSession:
        """The tenant's session, created on first use.

        Σ comes from the registry's *active* slot, which the
        shadow-slot upload path already validated consistent and
        compiled — so the session skips its own consistency pass and
        its compile is a fingerprint-keyed cache hit.
        """
        session = self._delta_sessions.get(tenant)
        if session is None:
            import os
            log_path = os.path.join(
                self.registry.spool_dir,
                "delta-%s.corrections.jsonl" % tenant)
            session = DeltaRepairSession(
                entry.ruleset, log_path=log_path,
                check_consistency=False,
                durable=self.state_store is not None)
            self._log_delta_open(tenant, session, log_path,
                                 entry.fingerprint)
            self._delta_sessions[tenant] = session
        return session

    def _log_delta_open(self, tenant: str, session, log_path: str,
                        fingerprint: str) -> None:
        """Write-ahead a session's existence before registering it.

        Restart recovery only re-hydrates sessions the state store
        knows about; a failed append closes the just-created session
        and surfaces as 503 — nothing was acknowledged.
        """
        if self.state_store is None:
            return
        try:
            self.state_store.append("delta_open", tenant=tenant,
                                    session_id=session.session_id,
                                    log_path=log_path,
                                    fingerprint=fingerprint)
        except OSError as exc:
            session.close()
            raise HttpError(503, "state store write failed (%s); the "
                            "delta session was not opened" % exc)

    def _delta_apply(self, tenant: str, entry: TenantRuleset,
                     upserts, deletes) -> dict:
        """Executor-side body of POST /repair/delta (holds the lock)."""
        with self._delta_lock:
            session = self._delta_session(tenant, entry)
            outcome = session.apply_rows(upserts=upserts, deletes=deletes)
            changed = {rid: session.row(rid) for rid in outcome.affected}
            return {
                "tenant": tenant,
                "engine": "delta",
                "fingerprint": session.rules_fingerprint,
                "epoch": outcome.epoch,
                "rows": changed,
                "affected": list(outcome.affected),
                "rows_total": len(session),
                "corrections": outcome.corrections,
                "reverts": outcome.reverts,
                "upserts": outcome.detail["upserts"],
                "deletes": outcome.detail["deletes"],
            }

    async def _handle_repair_delta(self, request: Request):
        """POST /repair/delta — absorb a row delta incrementally.

        Body: ``{"upserts": [{"id": ..., "values": [...]}, ...],
        "deletes": [id, ...]}`` where ``values`` accepts the same
        list-or-object row shapes as ``/repair``.  Only the affected
        rows are re-repaired; every cell change lands in the tenant's
        correction log under the registry spool.
        """
        started = time.monotonic()
        tenant = request.query.get("tenant", "default")
        entry = self._tenant_entry(request)
        body = request.json()
        if not isinstance(body, dict) or not (
                "upserts" in body or "deletes" in body):
            raise HttpError(400, 'body must be {"upserts": [...], '
                            '"deletes": [...]}')
        raw_upserts = body.get("upserts", [])
        raw_deletes = body.get("deletes", [])
        if not isinstance(raw_upserts, list) \
                or not isinstance(raw_deletes, list):
            raise HttpError(400, '"upserts" and "deletes" must be lists')
        upserts = []
        for index, item in enumerate(raw_upserts):
            if not isinstance(item, dict) or "id" not in item:
                raise HttpError(400, 'upsert %d must be {"id": ..., '
                                '"values": [...]}' % index)
            values = item.get("values", item.get("row"))
            if values is None:
                raise HttpError(400, 'upsert %d is missing "values"'
                                % index)
            upserts.append((str(item["id"]),
                            self._coerce_row(values, entry, index)))
        deletes = [str(item) for item in raw_deletes]
        loop = asyncio.get_running_loop()
        budget = self._deadline_budget(request)
        try:
            payload = await asyncio.wait_for(
                loop.run_in_executor(None, self._delta_apply, tenant,
                                     entry, upserts, deletes),
                timeout=budget + self.config.grace)
        except asyncio.TimeoutError:
            self.metrics.timeouts_total += 1
            raise HttpError(504, "delta repair exceeded its %.3fs "
                            "deadline" % budget)
        self.metrics.record_repair(
            len(upserts) + len(deletes), payload["corrections"],
            0, time.monotonic() - started, "serial")
        return 200, payload, None, None

    def _delta_status(self, request: Request):
        """GET /repair/delta — audit snapshot of a tenant's session."""
        tenant = request.query.get("tenant", "default")
        session = self._delta_sessions.get(tenant)
        if session is None:
            raise HttpError(404, "no delta session for tenant %r "
                            "(POST /repair/delta starts one)" % tenant)
        with self._delta_lock:
            report = session.generate_audit_report()
            if request.query.get("rows"):
                report["rows_data"] = {rid: values for rid, values
                                       in session.items()}
        return 200, report, None, None

    def _sync_delta_session(self, tenant: str,
                            entry: TenantRuleset) -> Optional[dict]:
        """Re-align the tenant's session after hot-reload/rollback.

        Diffs old vs. new Σ by rule signature and feeds
        ``apply_rules`` so only the affected slice re-repairs — the
        incremental continuation of the shadow-slot swap.  Any
        unexpected failure falls back to a full session rebuild from
        the retained originals (correctness over cleverness).
        """
        with self._delta_lock:
            session = self._delta_sessions.get(tenant)
            if session is None:
                return None
            old_rules = {rule.signature(): rule for rule in session.rules()}
            new_rules = {rule.signature(): rule for rule in entry.ruleset}
            added = [rule for sig, rule in new_rules.items()
                     if sig not in old_rules]
            removed = [rule for sig, rule in old_rules.items()
                       if sig not in new_rules]
            if not added and not removed:
                return {"rows_rerepaired": 0, "epoch": session.epoch,
                        "fingerprint": session.rules_fingerprint}
            try:
                outcome = session.apply_rules(added=added, removed=removed)
                return {"rows_rerepaired": len(outcome.affected),
                        "epoch": outcome.epoch,
                        "corrections": outcome.corrections,
                        "reverts": outcome.reverts,
                        "fingerprint": session.rules_fingerprint}
            except Exception as exc:
                rows = [(rid, session.original(rid))
                        for rid in session.row_ids()]
                log_path = session.log.path
                session.close()
                rebuilt = DeltaRepairSession(
                    entry.ruleset, rows, log_path=log_path,
                    check_consistency=False,
                    durable=self.state_store is not None)
                try:
                    self._log_delta_open(tenant, rebuilt, log_path,
                                         entry.fingerprint)
                except HttpError:
                    # the old session is closed and the rebuilt one was
                    # never acknowledged; drop the tenant's session
                    self._delta_sessions.pop(tenant, None)
                    raise
                self._delta_sessions[tenant] = rebuilt
                return {"rows_rerepaired": len(rows),
                        "rebuilt": True,
                        "error": "%s: %s" % (type(exc).__name__, exc),
                        "epoch": rebuilt.epoch,
                        "fingerprint": rebuilt.rules_fingerprint}

    async def _handle_check(self, request: Request):
        if request.body:
            try:
                ruleset = ruleset_from_json(request.body.decode("utf-8"))
            except (UnicodeDecodeError, SerializationError) as exc:
                raise HttpError(400, "bad ruleset: %s" % exc)
            fingerprint = None
        else:
            entry = self._tenant_entry(request)
            ruleset, fingerprint = entry.ruleset, entry.fingerprint
        loop = asyncio.get_running_loop()
        conflicts = await loop.run_in_executor(
            None, find_conflicts_cached, ruleset)
        return 200, {
            "consistent": not conflicts,
            "rules": len(ruleset),
            "fingerprint": fingerprint,
            "conflicts": [conflict.describe() for conflict in conflicts],
        }, None, None

    async def _handle_explain(self, request: Request):
        entry = self._tenant_entry(request)
        body = request.json()
        if not isinstance(body, dict) or "row" not in body:
            raise HttpError(400, 'body must be {"row": [...]}')
        row = Row(entry.ruleset.schema,
                  self._coerce_row(body["row"], entry, 0))
        loop = asyncio.get_running_loop()
        explanation = await loop.run_in_executor(
            None, explain_repair, row, entry.ruleset)
        result = explanation.result
        return 200, {
            "row": list(result.row.values),
            "changed": result.changed,
            "applied": [{"rule": fix.rule.name,
                         "attribute": fix.attribute,
                         "old_value": fix.old_value,
                         "new_value": fix.new_value}
                        for fix in result.applied],
            "assured": sorted(result.assured),
            "verdicts": [{"rule": item.rule.name,
                          "verdict": item.verdict,
                          "details": list(item.details)}
                         for item in explanation.explanations],
            "description": explanation.describe(),
        }, None, None

    async def _handle_rulesets(self, request: Request):
        parts = [part for part in request.path.split("/") if part]
        # /rulesets/{tenant} or /rulesets/{tenant}/rollback
        if len(parts) == 2:
            tenant = parts[1]
            if not request.body:
                raise HttpError(400, "upload body must be ruleset JSON")
            loop = asyncio.get_running_loop()
            try:
                text = request.body.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise HttpError(400, "ruleset is not UTF-8: %s" % exc)
            # validation compiles and scans Σ — off-loop
            entry = await loop.run_in_executor(
                None, self.registry.upload, tenant, text)
            # a live delta session follows the swap incrementally:
            # only rows touched by the Σ diff re-repair
            delta = await loop.run_in_executor(
                None, self._sync_delta_session, tenant, entry)
            payload = {"tenant": tenant, "installed": entry.describe()}
            if delta is not None:
                payload["delta"] = delta
            return 200, payload, None, None
        if len(parts) == 3 and parts[2] == "rollback":
            tenant = parts[1]
            try:
                entry = self.registry.rollback(tenant)
            except KeyError as exc:
                raise HttpError(404, str(exc))
            loop = asyncio.get_running_loop()
            delta = await loop.run_in_executor(
                None, self._sync_delta_session, tenant, entry)
            payload = {"tenant": tenant, "active": entry.describe()}
            if delta is not None:
                payload["delta"] = delta
            return 200, payload, None, None
        if len(parts) == 3 and parts[2] == "discover":
            return await self._handle_discover(parts[1], request)
        raise HttpError(404, "no route for %s" % request.path)

    def _mine_ruleset(self, body: dict):
        """Off-loop compute of ``POST /rulesets/{tenant}/discover``:
        build the table, mine + weigh + resolve, return the session."""
        from ..dependencies import parse_fd
        from ..discovery import DiscoverySession
        from ..relational import Schema, Table

        attributes = body.get("attributes")
        raw_rows = body.get("rows")
        if not isinstance(attributes, list) or not attributes or \
                not all(isinstance(a, str) for a in attributes):
            raise HttpError(400, '"attributes" must be a non-empty '
                            "list of strings")
        if not isinstance(raw_rows, list) or not raw_rows:
            raise HttpError(400, '"rows" must be a non-empty list')
        schema = Schema("discovered", attributes)
        rows = []
        for index, item in enumerate(raw_rows):
            if not isinstance(item, list) or len(item) != len(attributes):
                raise HttpError(400, "row %d must be a list of %d cells"
                                % (index, len(attributes)))
            cells = []
            for cell in item:
                if isinstance(cell, str):
                    cells.append(cell)
                elif isinstance(cell, (int, float)) and \
                        not isinstance(cell, bool):
                    cells.append(str(cell))
                else:
                    raise HttpError(400, "row %d contains a non-scalar "
                                    "cell" % index)
            rows.append(Row.from_trusted(schema, cells))
        table = Table.from_trusted_rows(schema, rows)
        fds = None
        if body.get("fds") is not None:
            if not isinstance(body["fds"], list):
                raise HttpError(400, '"fds" must be a list of strings '
                                'like "zip -> state"')
            try:
                fds = [parse_fd(text) for text in body["fds"]]
            except Exception as exc:
                raise HttpError(400, "bad FD: %s" % exc)
        try:
            session = DiscoverySession(
                table, fds=fds,
                min_support=int(body.get("min_support", 3)),
                min_confidence=float(body.get("min_confidence", 0.8)),
                fd_confidence=float(body.get("fd_confidence", 0.9)))
            session.discover()  # mining validates the parameters
        except (TypeError, ValueError) as exc:
            raise HttpError(400, "bad discovery parameter: %s" % exc)
        return session

    async def _handle_discover(self, tenant: str, request: Request):
        """Mine weighted rules from posted dirty rows and install them
        for *tenant* through the same shadow-slot validation as an
        explicit ruleset upload."""
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "body must be a JSON object")
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(None, self._mine_ruleset,
                                             body)
        weighted = session.discover()
        if len(weighted) == 0:
            raise HttpError(422, "discovery produced no rules (raise "
                            "the noise tolerance: lower min_support / "
                            "min_confidence, or pass known FDs)")
        entry = await loop.run_in_executor(
            None, self.registry.install, tenant, weighted.ruleset())
        delta = await loop.run_in_executor(
            None, self._sync_delta_session, tenant, entry)
        payload = {"tenant": tenant, "installed": entry.describe(),
                   "discovery": session.describe()}
        if delta is not None:
            payload["delta"] = delta
        return 200, payload, None, None


class ServerThread:
    """A daemon running on a private event loop in a thread.

    The test suite and the bench harness talk to the server with
    synchronous ``http.client`` calls, so the server needs to live on
    its own loop.  ``start()`` blocks until the port is bound.
    """

    def __init__(self, config: ServeConfig = ServeConfig(),
                 registry: Optional[RulesetRegistry] = None):
        self._config = config
        self._registry = registry
        self.server: Optional[RepairServer] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start within %.1fs"
                               % timeout)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start: %s"
                               % self._startup_error)
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self.loop = loop
        try:
            self.server = RepairServer(self._config, self._registry)
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(self.server.serve_forever())
        finally:
            loop.close()

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def stop(self, timeout: float = 30.0) -> bool:
        """Drain and shut down; True when the drain was clean."""
        if self.loop is None or self.server is None:
            return True
        future = asyncio.run_coroutine_threadsafe(self.server.drain(),
                                                  self.loop)
        try:
            clean = future.result(timeout)
        except Exception:
            clean = False
        if self._thread is not None:
            self._thread.join(timeout)
        return clean

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
