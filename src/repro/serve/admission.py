"""Admission control: bounded concurrency with watermark shedding.

The daemon admits at most ``max_concurrency`` heavy requests at a
time; arrivals beyond that wait on the semaphore.  The *queue
watermark* bounds that wait line — once ``waiting`` reaches the
watermark a new arrival is shed immediately with ``503`` and a
``Retry-After`` hint, because making it queue would only convert
overload into latency and memory growth.  Draining (the SIGTERM path)
flips ``accepting`` off so every new heavy request is shed while
in-flight ones finish.
"""

from __future__ import annotations

import asyncio
from typing import Optional

__all__ = ["AdmissionController"]


class AdmissionController:
    """Semaphore-bounded admission with an explicit shed decision.

    Usage::

        if not admission.try_begin():
            # shed: 503 + Retry-After
        async with admission:
            ... handle the request ...

    ``try_begin`` only *decides*; the context manager does the actual
    acquire (and registers as waiting while it blocks).  The split
    keeps the shed path synchronous: a shed request never touches the
    semaphore, so it cannot jump the line or leak a permit.
    """

    def __init__(self, max_concurrency: int, queue_watermark: int,
                 retry_after: float = 1.0):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1, got %d"
                             % max_concurrency)
        if queue_watermark < 0:
            raise ValueError("queue_watermark must be >= 0, got %d"
                             % queue_watermark)
        self.max_concurrency = max_concurrency
        self.queue_watermark = queue_watermark
        self.retry_after = retry_after
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self.accepting = True
        self.waiting = 0
        self.inflight = 0
        self.admitted_total = 0
        self.shed_total = 0
        self._idle_event = asyncio.Event()
        self._idle_event.set()

    def try_begin(self) -> bool:
        """Decide admission for one new heavy request.

        Sheds while draining, or when the request would have to *wait*
        (no free slot) and the wait line is already at the watermark —
        a free slot always admits, even with ``queue_watermark=0``.
        """
        would_wait = self.inflight >= self.max_concurrency
        if not self.accepting or \
                (would_wait and self.waiting >= self.queue_watermark):
            self.shed_total += 1
            return False
        return True

    async def __aenter__(self) -> "AdmissionController":
        self.waiting += 1
        self._idle_event.clear()
        try:
            await self._semaphore.acquire()
        finally:
            self.waiting -= 1
        self.inflight += 1
        self.admitted_total += 1
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        self.inflight -= 1
        self._semaphore.release()
        if self.inflight == 0 and self.waiting == 0:
            self._idle_event.set()

    def begin_drain(self) -> None:
        """Stop admitting; in-flight requests keep running."""
        self.accepting = False
        if self.inflight == 0 and self.waiting == 0:
            self._idle_event.set()

    async def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        try:
            await asyncio.wait_for(self._idle_event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def snapshot(self) -> dict:
        return {
            "accepting": self.accepting,
            "inflight": self.inflight,
            "waiting": self.waiting,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "max_concurrency": self.max_concurrency,
            "queue_watermark": self.queue_watermark,
        }
