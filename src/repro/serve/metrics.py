"""Serve-side observability: counters, latency quantiles, /metrics text.

Two scoping rules, fixed by the ``supervisor_stats()`` session-scoping
bug this PR closes:

* everything exported from ``/metrics`` is **monotonic for the life of
  the process** (a scraper differentiates it; counters must never go
  backwards), and
* supervisor counters are reported as a
  :class:`~repro.core.instrumentation.SupervisorStatsSession` delta —
  events since *this daemon* started, not since the process imported
  repro — so a test harness (or an embedding application) that ran
  pools before the daemon does not pollute the daemon's numbers.

Latency quantiles come from a bounded reservoir of the most recent
``/repair`` durations: honest p50/p99 for the recent window at O(1)
memory, recomputed only when scraped.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional

from ..core.instrumentation import SupervisorStatsSession

__all__ = ["ServeMetrics", "percentile"]

#: /repair durations kept for quantile estimates.
LATENCY_WINDOW = 2048


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples*; 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


class ServeMetrics:
    """All counters one daemon exports; mutated from the event loop only."""

    def __init__(self):
        self.started_at = time.monotonic()
        self.requests_by_endpoint: Dict[str, int] = {}
        self.responses_by_status: Dict[int, int] = {}
        self.rows_repaired_total = 0
        self.cells_changed_total = 0
        self.row_errors_total = 0
        self.timeouts_total = 0
        self.pool_requests_total = 0
        self.serial_requests_total = 0
        self.fallbacks_total = 0
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)
        self.supervisor_session = SupervisorStatsSession()

    # -- recording -----------------------------------------------------------

    def record_request(self, endpoint: str) -> None:
        self.requests_by_endpoint[endpoint] = \
            self.requests_by_endpoint.get(endpoint, 0) + 1

    def record_response(self, status: int) -> None:
        self.responses_by_status[status] = \
            self.responses_by_status.get(status, 0) + 1

    def record_repair(self, rows: int, cells_changed: int, row_errors: int,
                      duration: float, engine: str) -> None:
        self.rows_repaired_total += rows
        self.cells_changed_total += cells_changed
        self.row_errors_total += row_errors
        self._latencies.append(duration)
        if engine == "pool":
            self.pool_requests_total += 1
        else:
            self.serial_requests_total += 1

    # -- reporting -----------------------------------------------------------

    def latency_quantiles(self) -> Dict[str, float]:
        samples = list(self._latencies)
        return {
            "p50": percentile(samples, 0.50),
            "p99": percentile(samples, 0.99),
            "samples": float(len(samples)),
        }

    def snapshot(self, admission: Optional[dict] = None,
                 breaker: Optional[dict] = None,
                 registry: Optional[dict] = None) -> dict:
        """JSON-shaped view, used by tests and the bench harness."""
        return {
            "uptime_seconds": time.monotonic() - self.started_at,
            "requests_by_endpoint": dict(self.requests_by_endpoint),
            "responses_by_status": {str(code): count for code, count
                                    in self.responses_by_status.items()},
            "rows_repaired_total": self.rows_repaired_total,
            "cells_changed_total": self.cells_changed_total,
            "row_errors_total": self.row_errors_total,
            "timeouts_total": self.timeouts_total,
            "pool_requests_total": self.pool_requests_total,
            "serial_requests_total": self.serial_requests_total,
            "fallbacks_total": self.fallbacks_total,
            "latency": self.latency_quantiles(),
            "supervisor": self.supervisor_session.snapshot(),
            "admission": dict(admission or {}),
            "breaker": dict(breaker or {}),
            "registry": dict(registry or {}),
        }

    def render(self, admission: Optional[dict] = None,
               breaker: Optional[dict] = None,
               registry: Optional[dict] = None) -> str:
        """Prometheus-style exposition text for ``GET /metrics``."""
        lines: List[str] = []

        def emit(name: str, value, labels: str = "") -> None:
            lines.append("repro_serve_%s%s %s" % (name, labels, value))

        emit("uptime_seconds", "%.3f"
             % (time.monotonic() - self.started_at))
        for endpoint, count in sorted(self.requests_by_endpoint.items()):
            emit("requests_total", count, '{endpoint="%s"}' % endpoint)
        for status, count in sorted(self.responses_by_status.items()):
            emit("responses_total", count, '{status="%d"}' % status)
        emit("rows_repaired_total", self.rows_repaired_total)
        emit("cells_changed_total", self.cells_changed_total)
        emit("row_errors_total", self.row_errors_total)
        emit("timeouts_total", self.timeouts_total)
        emit("requests_engine_total", self.pool_requests_total,
             '{engine="pool"}')
        emit("requests_engine_total", self.serial_requests_total,
             '{engine="serial"}')
        emit("fallbacks_total", self.fallbacks_total)
        quantiles = self.latency_quantiles()
        emit("repair_latency_seconds", "%.6f" % quantiles["p50"],
             '{quantile="0.5"}')
        emit("repair_latency_seconds", "%.6f" % quantiles["p99"],
             '{quantile="0.99"}')
        for name, value in sorted(self.supervisor_session
                                  .snapshot().items()):
            emit("supervisor_%s" % name, value)
        for source, block in (("admission", admission),
                              ("breaker", breaker),
                              ("registry", registry)):
            for name, value in sorted((block or {}).items()):
                if isinstance(value, bool):
                    value = int(value)
                if isinstance(value, (int, float)):
                    emit("%s_%s" % (source, name), value)
                else:
                    emit("%s_info" % source, 1,
                         '{%s="%s"}' % (name, value))
        return "\n".join(lines) + "\n"
