"""The daemon's pre-warmed, supervised worker pool.

The batch executor (:class:`~repro.core.parallel.ParallelRepairExecutor`)
broadcasts one Σ per pool lifetime through the initializer — the right
shape for a run that repairs one table under one ruleset.  A daemon
serves *many* tenants whose rulesets hot-reload, so the serve pool
inverts the distribution: workers start Σ-less, and every task names
its ruleset by ``(fingerprint, spool_path)``.  A worker resolves the
fingerprint against a small in-worker kernel cache and loads the
spooled JSON only on a miss — so steady-state tasks ship raw cell
values plus two short strings, and a hot-reload needs no pool restart:
the next task's new fingerprint misses the cache and loads the new
file.  The spool file is written atomically before any request can
name its fingerprint, so a worker can never read a torn Σ.

Supervision reuses :meth:`~repro.core.supervisor.ChunkSupervisor.run_chunk`
— per-request deadlines that *cancel* (pool rebuild) rather than
orphan, worker-death detection, thread-safe concurrent submission —
with degradation disabled: the daemon's circuit breaker owns the
pool-vs-serial decision, so the supervisor must surface failures, not
absorb them.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections import OrderedDict
from typing import List, Optional, Tuple

from ..core.engine import CompiledRuleSet
from ..core.supervisor import (ERROR_MARK, ChunkSupervisor, SupervisorConfig,
                               WorkerFaultPlan)

__all__ = ["ServePool"]

#: Kernels a single worker keeps compiled; small because each entry
#: holds a full compiled Σ and tenants on one daemon rarely churn
#: through many distinct fingerprints at once.
WORKER_KERNEL_CACHE_SIZE = 8

# -- worker-side state --------------------------------------------------------

_SERVE_KERNELS: "OrderedDict[str, CompiledRuleSet]" = OrderedDict()
_SERVE_FAULTS: Optional[WorkerFaultPlan] = None
_SERVE_PARENT_PID: Optional[int] = None


def _init_serve_worker(blob: bytes) -> None:
    global _SERVE_FAULTS, _SERVE_PARENT_PID
    _SERVE_PARENT_PID = os.getppid()
    from ..core.parallel import _reap_with_parent
    _reap_with_parent()
    _SERVE_FAULTS = pickle.loads(blob)
    _SERVE_KERNELS.clear()


def _worker_kernel(fingerprint: str, spool_path: str) -> CompiledRuleSet:
    kernel = _SERVE_KERNELS.get(fingerprint)
    if kernel is not None:
        _SERVE_KERNELS.move_to_end(fingerprint)
        return kernel
    from ..core.serialization import load_ruleset
    ruleset = load_ruleset(spool_path)
    kernel = CompiledRuleSet(ruleset.schema, list(ruleset))
    kernel._fingerprint = fingerprint
    _SERVE_KERNELS[fingerprint] = kernel
    while len(_SERVE_KERNELS) > WORKER_KERNEL_CACHE_SIZE:
        _SERVE_KERNELS.popitem(last=False)
    return kernel


def _serve_chunk_task(task):
    """Repair one request's rows against the named Σ.

    Payload: ``(chunk_id, (fingerprint, spool_path, rows))``; returns
    ``(chunk_id, outcomes)`` in the standard per-row encoding —
    ``None`` (unchanged) | ``(new_values, applied)`` |
    ``(ERROR_MARK, error_type, message)``.
    """
    chunk_id, (fingerprint, spool_path, rows) = task
    if _SERVE_PARENT_PID is not None and os.getppid() != _SERVE_PARENT_PID:
        os._exit(2)  # orphaned by a hard-killed daemon
    plan = _SERVE_FAULTS
    out = []
    kernel = None
    for values in rows:
        try:
            if plan is not None:
                plan.maybe_fire(values)
            if kernel is None:
                kernel = _worker_kernel(fingerprint, spool_path)
            out.append(kernel.repair_values(values))
        except Exception as exc:  # per-row capture, same as batch path
            out.append((ERROR_MARK, type(exc).__name__, str(exc)))
    return chunk_id, out


def _no_serial_runner(payload):  # pragma: no cover - degrade is off
    raise RuntimeError("the serve pool never degrades in place; the "
                       "circuit breaker owns the serial fallback")


# -- the parent-side pool -----------------------------------------------------

class ServePool:
    """A supervised fork pool shared by every tenant of one daemon."""

    def __init__(self, workers: int, poll_interval: float = 0.05,
                 fault_plan: Optional[WorkerFaultPlan] = None):
        if workers < 1:
            raise ValueError("ServePool needs workers >= 1, got %d"
                             % workers)
        blob = pickle.dumps(fault_plan, protocol=pickle.HIGHEST_PROTOCOL)
        context = multiprocessing.get_context("fork")
        self.workers = workers
        self._supervisor = ChunkSupervisor(
            workers=workers,
            spawn=lambda: context.Pool(processes=workers,
                                       initializer=_init_serve_worker,
                                       initargs=(blob,)),
            task=_serve_chunk_task,
            serial_runner=_no_serial_runner,
            config=SupervisorConfig(
                chunk_timeout=None,   # per-request deadlines instead
                max_chunk_retries=0,  # the breaker owns retry policy
                degrade_to_serial=False,
                poll_interval=poll_interval,
            ))
        self._closed = False

    @property
    def stats(self):
        return self._supervisor.stats

    def repair(self, fingerprint: str, spool_path: str,
               rows: List[list], timeout: Optional[float] = None) -> list:
        """Repair *rows* under the spooled Σ; blocks up to *timeout*.

        Raises :class:`~repro.core.supervisor.ChunkDeadlineError` on a
        deadline hit and :class:`~repro.core.supervisor.WorkerCrashError`
        on a worker death — in both cases the pool was rebuilt, so the
        attempt is cancelled, not orphaned.  Called from executor
        threads; safe to call concurrently.
        """
        payload = (fingerprint, spool_path, rows)
        return self._supervisor.run_chunk(payload, timeout=timeout)

    def close(self) -> None:
        """Drain shutdown; hard-terminates if the pool ever failed."""
        if self._closed:
            return
        self._closed = True
        if self._supervisor.failed:
            self._supervisor.terminate()
        else:
            self._supervisor.close()

    def terminate(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._supervisor.terminate()

    def __repr__(self) -> str:
        return "ServePool(%d workers)" % self.workers
