"""Per-tenant ruleset registry with validate-then-swap hot reload.

Each tenant owns one *active* ruleset and (after the first reload) one
*previous* ruleset.  An upload never touches the active slot until the
candidate Σ′ has fully survived validation in a shadow slot:

1. parse (``ruleset_from_json``) — malformed JSON / rule syntax is a
   client error, :class:`RulesetRejected` 400;
2. blocked consistency check (``find_conflicts_cached``) — an
   inconsistent Σ′ would make repair results order-dependent
   (Theorem 5), so it is rejected with 422 and the conflict pairs;
3. compile (``compile_cached``) — the positional kernel the serial
   path executes;
4. spool to disk atomically (``tmp`` + ``os.replace``) under the
   content fingerprint — this file is what pool workers load, so a
   worker can never observe a half-written Σ.

Only after all four does the swap happen: ``previous ← active``,
``active ← candidate``.  That makes rollback a one-step pointer swap,
and it makes the failure-mode guarantee trivial — a rejected upload
leaves the old Σ serving because nothing was mutated.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from ..durability.faults import atomic_replace_bytes
from ..errors import ReproError, SerializationError
from ..core.consistency import find_conflicts_cached
from ..core.engine import (CompiledRuleSet, compile_cached,
                           rules_fingerprint)
from ..core.ruleset import RuleSet
from ..core.serialization import ruleset_from_json, ruleset_to_json

__all__ = ["RulesetRejected", "TenantRuleset", "RulesetRegistry"]


class RulesetRejected(ReproError):
    """An uploaded Σ′ failed shadow validation; the old Σ keeps serving."""

    def __init__(self, status: int, message: str, conflicts=None):
        super().__init__(message)
        #: the HTTP status the daemon maps this to (400 parse, 422
        #: inconsistent)
        self.status = status
        self.conflicts = list(conflicts or [])


class TenantRuleset:
    """One validated, compiled, spooled ruleset version."""

    __slots__ = ("ruleset", "compiled", "fingerprint", "json_text",
                 "spool_path", "rule_count")

    def __init__(self, ruleset: RuleSet, compiled: CompiledRuleSet,
                 fingerprint: str, json_text: str, spool_path: str):
        self.ruleset = ruleset
        self.compiled = compiled
        self.fingerprint = fingerprint
        self.json_text = json_text
        self.spool_path = spool_path
        self.rule_count = len(ruleset)

    def describe(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "rules": self.rule_count,
            "schema": self.ruleset.schema.name,
            "attributes": list(self.ruleset.schema.attribute_names),
        }


class _TenantSlots:
    __slots__ = ("active", "previous")

    def __init__(self, active: TenantRuleset):
        self.active = active
        self.previous: Optional[TenantRuleset] = None


class RulesetRegistry:
    """All tenants' rulesets; every mutation is validate-then-swap.

    With a *state_store* (:class:`~repro.durability.store.StateStore`)
    every acknowledged mutation is also written ahead to the WAL —
    *after* full shadow validation, *before* the swap — so a daemon
    restart recovers exactly the acknowledged tenant state.  A state-
    store write failure (disk full, I/O error) rejects the mutation
    with 503 and leaves the old Σ serving.
    """

    def __init__(self, spool_dir: str, state_store=None):
        self.spool_dir = spool_dir
        os.makedirs(spool_dir, exist_ok=True)
        self.state_store = state_store
        self._tenants: Dict[str, _TenantSlots] = {}
        self.reloads_total = 0
        self.rejects_total = 0
        self.rollbacks_total = 0

    # -- lookup --------------------------------------------------------------

    def get(self, tenant: str) -> TenantRuleset:
        try:
            return self._tenants[tenant].active
        except KeyError:
            raise KeyError("unknown tenant %r; upload a ruleset to "
                           "/rulesets/%s first" % (tenant, tenant))

    def tenants(self) -> Dict[str, dict]:
        return {name: slots.active.describe()
                for name, slots in sorted(self._tenants.items())}

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    # -- mutation ------------------------------------------------------------

    def upload(self, tenant: str, json_text: str, *,
               source: str = "upload") -> TenantRuleset:
        """Validate Σ′ in a shadow slot; swap it in only on full success.

        Raises :class:`RulesetRejected` (carrying the HTTP status) on
        any validation failure; the tenant's active slot is untouched.
        The write-ahead record (when a state store is attached) lands
        between validation and the swap: a crash after the append
        recovers the new Σ — which passed validation in full — while a
        failed append rejects the upload with the old Σ still serving.
        """
        candidate = self._validate(json_text)
        self._log_state("tenant_upload", tenant,
                        fingerprint=candidate.fingerprint,
                        ruleset_json=json_text, source=source)
        self.reloads_total += 1
        slots = self._tenants.get(tenant)
        if slots is None:
            self._tenants[tenant] = _TenantSlots(candidate)
        else:
            slots.previous = slots.active
            slots.active = candidate
        return candidate

    def install(self, tenant: str, ruleset: RuleSet, *,
                source: str = "upload") -> TenantRuleset:
        """Register an already-parsed Σ (the CLI preload path).

        Runs the same consistency + compile + spool validation as
        :meth:`upload`.
        """
        return self.upload(tenant, ruleset_to_json(ruleset),
                           source=source)

    def rollback(self, tenant: str) -> TenantRuleset:
        """Swap active and previous; error when there is no previous."""
        slots = self._tenants.get(tenant)
        if slots is None:
            raise KeyError("unknown tenant %r" % tenant)
        if slots.previous is None:
            raise RulesetRejected(
                409, "tenant %r has no previous ruleset to roll back to"
                % tenant)
        self._log_state("tenant_rollback", tenant)
        slots.active, slots.previous = slots.previous, slots.active
        self.rollbacks_total += 1
        return slots.active

    def restore(self, tenant: str, active_json: str,
                previous_json: Optional[str] = None) -> TenantRuleset:
        """Recovery path: re-validate and seat slots directly.

        Runs the full shadow validation (parse, consistency, compile,
        spool) but writes **no** state-store records and bumps no
        reload counters — recovering recovered state must not grow the
        WAL it is replaying.
        """
        active = self._validate(active_json)
        slots = _TenantSlots(active)
        if previous_json is not None:
            slots.previous = self._validate(previous_json)
        self._tenants[tenant] = slots
        return active

    # -- internals -----------------------------------------------------------

    def _log_state(self, op: str, tenant: str, **fields) -> None:
        """Write-ahead one acknowledged mutation; 503 on disk failure."""
        if self.state_store is None:
            return
        try:
            self.state_store.append(op, tenant=tenant, **fields)
        except OSError as exc:
            self.rejects_total += 1
            raise RulesetRejected(
                503, "state store write failed (%s); the mutation was "
                "not applied and the previous ruleset keeps serving"
                % exc)

    def _validate(self, json_text: str) -> TenantRuleset:
        try:
            ruleset = ruleset_from_json(json_text)
        except SerializationError as exc:
            self.rejects_total += 1
            raise RulesetRejected(400, "ruleset rejected: %s" % exc)
        if len(ruleset) == 0:
            self.rejects_total += 1
            raise RulesetRejected(400, "ruleset rejected: no rules")
        conflicts = find_conflicts_cached(ruleset, first_only=True)
        fingerprint = rules_fingerprint(ruleset)
        if conflicts:
            self.rejects_total += 1
            raise RulesetRejected(
                422,
                "ruleset rejected: Σ is inconsistent (%s); an inconsistent "
                "rule set would make repairs order-dependent"
                % conflicts[0].describe(), conflicts=conflicts)
        compiled = compile_cached(ruleset.schema, ruleset,
                                  fingerprint=fingerprint)
        spool_path = self._spool(fingerprint, json_text)
        return TenantRuleset(ruleset, compiled, fingerprint, json_text,
                             spool_path)

    def _spool(self, fingerprint: str, json_text: str) -> str:
        """Write Σ to ``<spool_dir>/<fingerprint>.json`` durably.

        Content-addressed: two tenants sharing a Σ share the file, and
        re-uploading a previous version is a no-op write.  The write
        is fsynced and the publish rename is followed by a parent-dir
        fsync — pool workers load this file by fingerprint, so a
        half-written (or silently vanishing) spool would poison every
        request after a restart.  Disk failure surfaces as a 503
        :class:`RulesetRejected`, the old Σ still serving.
        """
        path = os.path.join(self.spool_dir, "%s.json" % fingerprint)
        if os.path.exists(path):
            return path
        try:
            atomic_replace_bytes(path, json_text.encode("utf-8"), "spool")
        except OSError as exc:
            self.rejects_total += 1
            raise RulesetRejected(
                503, "cannot spool ruleset %s: %s; the previous ruleset "
                "keeps serving" % (fingerprint[:12], exc))
        return path
