"""Circuit breaker guarding the pre-warmed worker pool.

The pool is the fast path for ``/repair``; when workers crash or hang
repeatedly, every request that tries the pool pays a full deadline (or
a pool rebuild) before failing over.  The breaker cuts that loss
short: after ``failure_threshold`` *consecutive* pool failures it
opens and requests go straight to the in-process serial engine.  After
``reset_timeout`` seconds it admits up to ``half_open_probes``
requests back to the pool ("half-open"); one success closes it, one
failure re-opens it and restarts the clock.

The breaker is driven from the event loop only, so it needs no lock —
``allow``/``record_*`` are plain synchronous calls.
"""

from __future__ import annotations

import time

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 5.0,
                 half_open_probes: int = 1, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1, got %d"
                             % failure_threshold)
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1, got %d"
                             % half_open_probes)
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self.state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self.opens_total = 0
        self.closes_total = 0
        self.probe_successes = 0
        self.probe_failures = 0

    def allow(self) -> bool:
        """May the next request use the pool?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.reset_timeout:
                self.state = HALF_OPEN
                self._probes_inflight = 0
            else:
                return False
        # half-open: admit a bounded number of concurrent probes
        if self._probes_inflight < self.half_open_probes:
            self._probes_inflight += 1
            return True
        return False

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self.probe_successes += 1
            self.state = CLOSED
            self.closes_total += 1
        self._consecutive_failures = 0
        self._probes_inflight = 0

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            self.probe_failures += 1
            self._trip()
            return
        self._consecutive_failures += 1
        if self.state == CLOSED and \
                self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = OPEN
        self.opens_total += 1
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_inflight = 0

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "opens_total": self.opens_total,
            "closes_total": self.closes_total,
            "probe_successes": self.probe_successes,
            "probe_failures": self.probe_failures,
        }
