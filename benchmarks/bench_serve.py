"""Serve-path benchmark: /repair latency quantiles and throughput.

Standalone script (not a pytest benchmark — run it directly):

    PYTHONPATH=src python benchmarks/bench_serve.py

Boots a real ``repro serve`` daemon (loopback TCP, pre-warmed worker
pool, admission control on) exactly as ``repro serve`` would, uploads a
mined HOSP Σ through the hot-reload endpoint, then drives concurrent
``POST /repair`` batches at it from client threads and measures
*client-observed* wall latency — the number a caller of the service
actually experiences, including HTTP framing, admission, IPC to the
pool, and response assembly.

Results land in ``BENCH_serve.json`` at the repo root: p50/p99 request
latency, end-to-end rows/s, and the daemon's own ``/metrics`` counters
(pool vs serial engine split, shed/timeout counts — all must be clean
in a benchmark run).  The script **exits nonzero** if

* any request fails, is shed, or times out (a dependability benchmark
  with errors in it is not a benchmark),
* throughput falls below the absolute floor (full scale only), or
* ``--baseline`` names a prior BENCH_serve.json and throughput drops
  below ``REGRESSION_FRACTION`` of it.

``--smoke`` runs a tiny configuration (< 10 s) for CI; smoke runs
still enforce the zero-error gate but skip the throughput gates, and
write ``"smoke": true`` so readers don't mistake the numbers for the
real benchmark.
"""

from __future__ import annotations

import argparse
import http.client
import json
import threading
import time
from pathlib import Path

from repro.core import RuleSet
from repro.core.serialization import ruleset_to_json
from repro.datagen import (constraint_attributes, generate_hosp, hosp_fds,
                           inject_noise)
from repro.rulegen.seeds import generate_seed_rules
from repro.serve import ServeConfig, ServerThread, percentile

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serve.json"

ROWS = 20_000
RULE_CAP = 500
NOISE_RATE = 0.08
SEED = 7
BATCH_ROWS = 200        # rows per POST /repair
CLIENT_THREADS = 4      # concurrent callers (under max_concurrency=8)

SMOKE_ROWS = 1_000
SMOKE_RULE_CAP = 100

DELTA_ROWS = 2_000      # acknowledged upserts in the recovery leg
SMOKE_DELTA_ROWS = 200

#: full-scale sanity floor; the serial CSV path does ~28K rows/s, a
#: loopback HTTP round trip per 200-row batch must still clear this.
ROWS_PER_S_FLOOR = 1_000.0
#: with --baseline: fail if rows/s regresses below this fraction of it.
REGRESSION_FRACTION = 0.5


def build_workload(rows: int, rule_cap: int, seed: int = SEED):
    clean = generate_hosp(rows=rows, seed=seed)
    noise = inject_noise(clean, constraint_attributes(hosp_fds()),
                         noise_rate=NOISE_RATE, typo_ratio=0.5, seed=seed)
    mined = generate_seed_rules(clean, noise.table, hosp_fds())
    rules = RuleSet(clean.schema, mined.rules()[:rule_cap])
    return noise.table, rules


def request(port: int, method: str, path: str, body=None, timeout=60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        return response.status, raw.decode("utf-8", "replace")
    finally:
        conn.close()


def drive(port: int, batches, threads: int):
    """Send every batch as ``POST /repair``; return per-request stats."""
    lock = threading.Lock()
    latencies = []
    failures = []
    queue = list(enumerate(batches))

    def worker():
        while True:
            with lock:
                if not queue:
                    return
                index, rows = queue.pop()
            started = time.perf_counter()
            status, text = request(port, "POST", "/repair", {"rows": rows})
            elapsed = time.perf_counter() - started
            with lock:
                if status != 200:
                    failures.append((index, status, text[:200]))
                else:
                    latencies.append(elapsed)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return time.perf_counter() - start, latencies, failures


def wait_ready(port: int, deadline: float = 120.0) -> float:
    """Poll /readyz until 200; returns the seconds it took."""
    start = time.perf_counter()
    while time.perf_counter() - start < deadline:
        try:
            status, _ = request(port, "GET", "/readyz", timeout=5.0)
        except OSError:
            status = 0
        if status == 200:
            return time.perf_counter() - start
        time.sleep(0.02)
    raise SystemExit("FAIL: daemon not ready within %.0fs" % deadline)


def bench_recovery(table, rules, delta_rows: int):
    """Recovery-time leg: kill a stateful daemon, measure the restart.

    Boots ``repro serve`` with a ``--state-dir``, uploads Σ, pushes
    *delta_rows* acknowledged upserts through ``/repair/delta``, shuts
    the daemon down, then restarts it on the same state directory and
    measures the time from process start to ``/readyz`` turning 200 —
    that is WAL replay plus correction-log re-hydration, the window a
    crashed production daemon is dark.  Fails if the recovered session
    does not hold every acknowledged row.
    """
    import tempfile

    values = [list(row.values) for row in table][:delta_rows]
    with tempfile.TemporaryDirectory(prefix="repro-bench-state-") as state:
        config = ServeConfig(pool_workers=0, state_dir=state)
        rules_body = json.loads(ruleset_to_json(rules))
        with ServerThread(config) as daemon:
            status, _ = request(daemon.port, "POST", "/rulesets/default",
                                body=rules_body)
            if status != 200:
                raise SystemExit("FAIL: recovery-leg upload returned %d"
                                 % status)
            started = time.perf_counter()
            for start_index in range(0, len(values), BATCH_ROWS):
                chunk = values[start_index:start_index + BATCH_ROWS]
                status, text = request(
                    daemon.port, "POST", "/repair/delta?tenant=default",
                    body={"upserts": [
                        {"id": str(start_index + i), "values": row}
                        for i, row in enumerate(chunk)]})
                if status != 200:
                    raise SystemExit("FAIL: delta batch returned %d: %s"
                                     % (status, text[:200]))
            ingest_seconds = time.perf_counter() - started

        restart_started = time.perf_counter()
        with ServerThread(config) as daemon:
            ready_seconds = wait_ready(daemon.port)
            restart_seconds = time.perf_counter() - restart_started
            status, text = request(daemon.port, "GET",
                                   "/repair/delta?tenant=default")
            audit = json.loads(text) if status == 200 else {}
            report = daemon.server.recovery_report or {}

    recovered_ok = bool(report.get("ok")) \
        and audit.get("rows") == len(values)
    print("recovery: %d delta rows ingested in %.2fs; restart to ready "
          "in %.2fs (replay %.2fs) -> %s"
          % (len(values), ingest_seconds, restart_seconds, ready_seconds,
             "OK" if recovered_ok else "FAIL"))
    return {
        "delta_rows": len(values),
        "ingest_seconds": round(ingest_seconds, 3),
        "restart_to_ready_seconds": round(restart_seconds, 3),
        "replay_seconds": round(ready_seconds, 3),
        "recovered_rows": audit.get("rows"),
        "recovered_epoch": audit.get("epoch"),
        "recovered_ok": recovered_ok,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--baseline", type=Path, default=None,
                        help="a prior BENCH_serve.json; fail if rows/s "
                             "drops below %.0f%% of it"
                             % (100 * REGRESSION_FRACTION))
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (<10s); skips "
                             "the throughput gates")
    args = parser.parse_args(argv)

    rows = args.rows or (SMOKE_ROWS if args.smoke else ROWS)
    rule_cap = SMOKE_RULE_CAP if args.smoke else RULE_CAP

    print("generating workload: %d rows, <=%d rules ..." % (rows, rule_cap))
    table, rules = build_workload(rows, rule_cap)
    batches = []
    values = [list(row.values) for row in table]
    for start in range(0, len(values), BATCH_ROWS):
        batches.append(values[start:start + BATCH_ROWS])

    config = ServeConfig(pool_workers=2, max_concurrency=8,
                         queue_watermark=16, request_timeout=120.0)
    with ServerThread(config) as daemon:
        status, _ = request(daemon.port, "POST", "/rulesets/default",
                            body=json.loads(ruleset_to_json(rules)))
        if status != 200:
            raise SystemExit("FAIL: ruleset upload returned %d" % status)
        print("daemon on port %d; driving %d batches x %d rows "
              "from %d client threads ..."
              % (daemon.port, len(batches), BATCH_ROWS, CLIENT_THREADS))
        seconds, latencies, failures = drive(daemon.port, batches,
                                             CLIENT_THREADS)
        status, metrics_text = request(daemon.port, "GET", "/metrics")

    recovery = bench_recovery(
        table, rules, delta_rows=SMOKE_DELTA_ROWS if args.smoke
        else DELTA_ROWS)

    failed = False
    if not recovery["recovered_ok"]:
        failed = True
        print("FAIL: the restarted daemon did not recover every "
              "acknowledged delta row: %r" % recovery)
    if failures:
        failed = True
        print("FAIL: %d request(s) did not return 200, e.g. %r"
              % (len(failures), failures[0]))

    rows_per_s = rows / seconds if seconds else 0.0
    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)
    print("served %d rows in %.2fs -> %.0f rows/s  "
          "(p50 %.1f ms, p99 %.1f ms per %d-row batch)"
          % (rows, seconds, rows_per_s, p50 * 1e3, p99 * 1e3, BATCH_ROWS))

    if not args.smoke:
        if rows_per_s < ROWS_PER_S_FLOOR:
            failed = True
            print("FAIL: %.0f rows/s is below the %.0f rows/s floor"
                  % (rows_per_s, ROWS_PER_S_FLOOR))
        if args.baseline and args.baseline.exists():
            baseline = json.loads(args.baseline.read_text())
            prior = float(baseline.get("repair", {})
                          .get("rows_per_s", 0.0))
            if prior and rows_per_s < REGRESSION_FRACTION * prior:
                failed = True
                print("FAIL: %.0f rows/s < %.0f%% of baseline %.0f"
                      % (rows_per_s, 100 * REGRESSION_FRACTION, prior))

    # the daemon's own view: everything pool-served, nothing shed/504'd
    daemon_counters = {}
    for line in metrics_text.splitlines():
        for key in ("repro_serve_admission_shed_total",
                    "repro_serve_timeouts_total",
                    "repro_serve_fallbacks_total",
                    "repro_serve_supervisor_worker_deaths"):
            if line.startswith(key + " "):
                daemon_counters[key[len("repro_serve_"):]] = \
                    int(float(line.split()[-1]))
    if any(daemon_counters.values()):
        failed = True
        print("FAIL: daemon saw faults during a clean benchmark: %r"
              % daemon_counters)

    result = {
        "benchmark": "serve_repair_http",
        "smoke": bool(args.smoke),
        "protocol": {
            "rows": rows, "rules": len(rules.rules()),
            "batch_rows": BATCH_ROWS, "client_threads": CLIENT_THREADS,
            "noise_rate": NOISE_RATE, "seed": SEED,
            "pool_workers": config.pool_workers,
            "max_concurrency": config.max_concurrency,
        },
        "repair": {
            "seconds": round(seconds, 3),
            "rows_per_s": round(rows_per_s, 1),
            "requests": len(latencies),
            "latency_p50_ms": round(p50 * 1e3, 2),
            "latency_p99_ms": round(p99 * 1e3, 2),
        },
        "daemon": daemon_counters,
        "recovery": recovery,
        "gates": {
            "zero_errors": not failures,
            "recovered_ok": recovery["recovered_ok"],
            "rows_per_s_floor": None if args.smoke else ROWS_PER_S_FLOOR,
        },
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print("wrote %s" % args.output)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
