"""Exp-3 / Fig. 13: efficiency of the repairing algorithms.

Repair time vs |Σ| for cRepair (chase) and lRepair (inverted lists +
hash counters).  Expected shape: lRepair is flatter — each rule is
examined at most |X_φ|+1 times per tuple versus a full rescan per
chase round — and the gap widens with |Σ|.  The paper's Fig. 13(b)
notes cRepair can win only at very small |Σ| where index setup
dominates.
"""

from __future__ import annotations

import pytest

from repro.core import repair_table
from repro.evaluation import format_series
from repro.evaluation.figures import repair_timing


def test_fig13a_hosp(hosp_bundle, benchmark):
    sizes = [100, 250, 500, 750, 1000]
    chase_times, fast_times = repair_timing(hosp_bundle, sizes)
    print()
    print(format_series(
        "Fig 13(a) hosp: repair time (s) vs |Sigma|", "|Sigma|", sizes,
        {"cRepair": chase_times, "lRepair": fast_times}))
    # lRepair clearly faster at scale, and its advantage grows.
    assert fast_times[-1] < chase_times[-1]
    gap_small = chase_times[0] - fast_times[0]
    gap_large = chase_times[-1] - fast_times[-1]
    assert gap_large > gap_small
    benchmark.pedantic(repair_table,
                       args=(hosp_bundle.dirty,
                             hosp_bundle.rules.subset(1000)),
                       kwargs={"algorithm": "fast"}, rounds=3,
                       iterations=1)


def test_fig13b_uis(uis_bundle, benchmark):
    sizes = [10, 25, 50, 75, 100]
    chase_times, fast_times = repair_timing(uis_bundle, sizes)
    print()
    print(format_series(
        "Fig 13(b) uis: repair time (s) vs |Sigma|", "|Sigma|", sizes,
        {"cRepair": chase_times, "lRepair": fast_times}))
    # At the largest size lRepair wins (the paper's general finding;
    # at |Sigma|=10 index overhead may let cRepair edge ahead).
    assert fast_times[-1] <= chase_times[-1] * 1.1
    benchmark.pedantic(repair_table,
                       args=(uis_bundle.dirty,
                             uis_bundle.rules.subset(100)),
                       kwargs={"algorithm": "fast"}, rounds=3,
                       iterations=1)
