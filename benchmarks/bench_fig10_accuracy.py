"""Exp-2(a,b) / Fig. 10: repair accuracy.

Eight panels:

* (a,b) hosp — precision/recall vs typo percentage (noise fixed 10%);
* (e,f) uis  — same sweep;
* (c,d) hosp — precision/recall vs |Σ|;
* (g,h) uis  — same sweep.

Expected shapes (paper):
* Fix precision is high and insensitive to the error-type mix; Heu and
  Csm lose precision as errors shift to the active domain (typo% → 0).
* Fix recall is below the heuristics' (fixing rules are conservative)
  but grows with |Σ| while precision stays high.
* uis recall is very low for every method (few repeated patterns).

Rule-count protocol: the paper uses 1000 rules for 115K hosp rows and
100 for 15K uis rows — a *capped* rule set far smaller than the
violation count.  We apply the same idea at our scale (hosp cap 600,
uis cap 100).
"""

from __future__ import annotations

import pytest

from repro.evaluation import format_series, prepare, run_fixing_rules
from repro.evaluation.figures import accuracy_rule_sweep, accuracy_typo_sweep

TYPO_SWEEP = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
HOSP_CAP = 600
UIS_CAP = 100


def test_fig10ab_hosp_typo_sweep(hosp_workload, benchmark):
    precision, recall = accuracy_typo_sweep(hosp_workload, HOSP_CAP,
                                            TYPO_SWEEP)
    xs = ["%d%%" % int(t * 100) for t in TYPO_SWEEP]
    print()
    print(format_series("Fig 10(a) hosp: precision vs typo%", "typo%",
                        xs, precision))
    print(format_series("Fig 10(b) hosp: recall vs typo%", "typo%",
                        xs, recall))
    # Fix dominates on precision at every point (Fig. 10(a)).
    for i in range(len(TYPO_SWEEP)):
        assert precision["Fix"][i] > precision["Heu"][i]
        assert precision["Fix"][i] > precision["Csm"][i]
    # Fix precision is high; the paper notes (and we reproduce) a dip
    # when all errors come from the active domain -- swapped evidence
    # values can mislead rules (the (China, Shanghai)->(Canada,
    # Toronto) example of Section 7.2).
    assert min(precision["Fix"]) > 0.7
    assert precision["Fix"][-1] > 0.99        # pure typos: near-perfect
    assert precision["Fix"][-1] > precision["Fix"][0]
    # Heu recovers precision as errors become typos (Fig. 10(a) slope).
    assert precision["Heu"][-1] > precision["Heu"][0]
    # Conservatism: Fix recall below Heu recall (Fig. 10(b)).
    assert recall["Fix"][2] < recall["Heu"][2]
    prep = prepare(hosp_workload, noise_rate=0.10, typo_ratio=0.5,
                   max_rules=HOSP_CAP, enrichment_per_rule=3)
    benchmark.pedantic(run_fixing_rules, args=(prep,), rounds=3,
                       iterations=1)


def test_fig10ef_uis_typo_sweep(uis_workload, benchmark):
    precision, recall = accuracy_typo_sweep(uis_workload, UIS_CAP,
                                            TYPO_SWEEP)
    xs = ["%d%%" % int(t * 100) for t in TYPO_SWEEP]
    print()
    print(format_series("Fig 10(e) uis: precision vs typo%", "typo%",
                        xs, precision))
    print(format_series("Fig 10(f) uis: recall vs typo%", "typo%",
                        xs, recall))
    for i in range(len(TYPO_SWEEP)):
        assert precision["Fix"][i] >= precision["Csm"][i]
    # Fig. 10(f): recall is very low for every method on uis (the
    # dataset has few repeated patterns per FD; paper reports < 8%).
    assert max(recall["Fix"]) < 0.30
    assert max(recall["Heu"]) < 0.60
    prep = prepare(uis_workload, noise_rate=0.10, typo_ratio=0.5,
                   max_rules=UIS_CAP, enrichment_per_rule=3)
    benchmark.pedantic(run_fixing_rules, args=(prep,), rounds=3,
                       iterations=1)


def test_fig10cd_hosp_rule_sweep(hosp_workload, benchmark):
    caps = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
    full, precision, recall = accuracy_rule_sweep(hosp_workload, caps)
    print()
    print(format_series(
        "Fig 10(c)/(d) hosp: accuracy vs |Sigma| (Heu/Csm are flat)",
        "|Sigma|", caps, {"Fix-recall": recall,
                          "Fix-precision": precision}))
    # More rules -> better recall, precision stays high (Fig. 10(c,d)).
    assert recall[-1] > recall[0] * 2
    assert all(p > 0.9 for p in precision)
    benchmark.pedantic(run_fixing_rules,
                       args=(full._replace(rules=full.rules.subset(500)),),
                       rounds=3, iterations=1)


def test_fig10gh_uis_rule_sweep(uis_workload, benchmark):
    caps = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    full, precision, recall = accuracy_rule_sweep(uis_workload, caps)
    print()
    print(format_series(
        "Fig 10(g)/(h) uis: accuracy vs |Sigma| (Heu/Csm are flat)",
        "|Sigma|", caps, {"Fix-recall": recall,
                          "Fix-precision": precision}))
    assert recall[-1] >= recall[0]
    assert all(p > 0.8 for p in precision)
    benchmark.pedantic(run_fixing_rules,
                       args=(full._replace(rules=full.rules.subset(100)),),
                       rounds=3, iterations=1)
