"""Exp-2(d) / Fig. 12: comparison with editing rules (hosp).

* (a) errors corrected per fixing rule (100 rules, 10% noise): the
  paper's point is that single rules repair many tuples, each of which
  would cost one user interaction under editing rules;
* (b) Fix vs automated Edit (negative patterns stripped, user always
  says yes): Fix wins decisively on precision because LHS errors
  poison editing rules.
"""

from __future__ import annotations

import pytest

from repro.core import repair_table
from repro.evaluation import format_series, prepare, run_editing
from repro.evaluation.figures import corrections_per_rule, fix_vs_edit


def test_fig12a_errors_per_rule(hosp_workload, benchmark):
    prep = prepare(hosp_workload, noise_rate=0.10, typo_ratio=0.5,
                   max_rules=100, enrichment_per_rule=3)
    ranked = corrections_per_rule(prep)
    top = ranked[:10]
    print()
    print(format_series(
        "Fig 12(a) hosp: errors corrected per fixing rule (top 10)",
        "rank", list(range(1, len(top) + 1)), {"corrections": top}))
    total = sum(ranked)
    print("rules applied: %d / 100, total corrections: %d"
          % (len(ranked), total))
    # A single fixing rule repairs multiple tuples' errors -- each of
    # which would be one user interaction with editing rules.
    assert ranked[0] >= 3
    assert total > len(ranked)  # on average more than one fix per rule
    benchmark.pedantic(repair_table, args=(prep.dirty, prep.rules),
                       rounds=3, iterations=1)


def test_fig12b_fix_vs_edit(hosp_workload, benchmark):
    prep = prepare(hosp_workload, noise_rate=0.10, typo_ratio=0.5,
                   max_rules=100, enrichment_per_rule=3)
    results = fix_vs_edit(prep)
    fix, edit = results["Fix"], results["Edit"]
    print()
    print(format_series(
        "Fig 12(b) hosp: Fix vs automated Edit",
        "metric", ["precision", "recall"],
        {"Fix": [fix.quality.precision, fix.quality.recall],
         "Edit": [edit.quality.precision, edit.quality.recall]}))
    # Fig. 12(b): fixing rules beat automated editing rules decisively
    # on precision -- editing rules treat LHS errors as correct
    # evidence and introduce new errors.  On recall the two are close
    # at our scale: editing rules also fire on typo'd values outside
    # the negative patterns (a few extra catches), which roughly
    # offsets the corrections they block by wrongly assuring
    # attributes.  The paper reports a clearer recall win; we record
    # the deviation in EXPERIMENTS.md and assert parity-or-better
    # within noise.
    assert fix.quality.precision > edit.quality.precision + 0.1
    assert fix.quality.recall >= edit.quality.recall * 0.8
    benchmark.pedantic(run_editing, args=(prep,), rounds=3, iterations=1)
