"""Extension experiment: accuracy vs noise rate (hosp).

The paper fixes the noise rate at 10% and sweeps other dials.  The
obvious follow-up — how do the methods degrade as data gets dirtier? —
is a one-line sweep with this harness, so we run it: noise 2%→30%,
half typos, capped Σ regenerated per rate (rules depend on the
violations present).

Measured shape: Fix precision stays ~0.95+ across the whole range
(each rule is triggered by local evidence, not by global violation
structure), while the baselines stay far below.  Every method's
*recall* declines with noise — for Fix because the capped rule budget
covers a shrinking share of the violations, for Heu because denser
errors leave fewer trustworthy majorities.
"""

from __future__ import annotations

import pytest

from repro.evaluation import format_series, prepare, run_all_methods

RATES = [0.02, 0.05, 0.10, 0.20, 0.30]
CAP = 600


def test_accuracy_vs_noise_rate(hosp_workload, benchmark):
    precision = {"Fix": [], "Heu": [], "Csm": []}
    recall = {"Fix": [], "Heu": [], "Csm": []}
    for rate in RATES:
        prep = prepare(hosp_workload, noise_rate=rate, typo_ratio=0.5,
                       max_rules=CAP, enrichment_per_rule=3)
        for name, result in run_all_methods(prep).items():
            precision[name].append(result.quality.precision)
            recall[name].append(result.quality.recall)
    xs = ["%d%%" % int(rate * 100) for rate in RATES]
    print()
    print(format_series(
        "Extension: precision vs noise rate (hosp, typo 50%)",
        "noise", xs, precision))
    print(format_series(
        "Extension: recall vs noise rate (hosp, typo 50%)",
        "noise", xs, recall))
    # Fix precision dominates at every dirt level.
    for i in range(len(RATES)):
        assert precision["Fix"][i] > precision["Heu"][i]
        assert precision["Fix"][i] > precision["Csm"][i]
    # And stays high in absolute terms across the sweep.
    assert min(precision["Fix"]) > 0.8
    prep = prepare(hosp_workload, noise_rate=0.10, typo_ratio=0.5,
                   max_rules=CAP, enrichment_per_rule=3)
    from repro.evaluation import run_fixing_rules
    benchmark.pedantic(run_fixing_rules, args=(prep,), rounds=3,
                       iterations=1)
