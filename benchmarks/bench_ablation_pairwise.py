"""Ablation: why rule characterization matters (Section 5.2.2).

isConsist_t's per-pair cost is the *product* of the per-attribute value
pools — it grows multiplicatively with the negative-pattern counts —
while isConsist_r's is constant-time hashing.  This bench grows the
negative-pattern sets of a fixed pair population and shows the
divergence directly, isolating the effect Fig. 9 shows in aggregate.
"""

from __future__ import annotations

import time

import pytest

from repro.core import (FixingRule, RuleSet, is_consistent_characterize,
                        is_consistent_enumerate)
from repro.evaluation import format_series
from repro.relational import Schema

SCHEMA = Schema("R", ["a", "b", "c", "d"])


def _rules_with_negative_width(width: int) -> RuleSet:
    """24 pairwise-consistent rules whose negative sets have *width*
    values each."""
    rules = []
    for i in range(24):
        negatives = {"bad-%d-%d" % (i, j) for j in range(width)}
        rules.append(FixingRule(
            {"a": "k%d" % i, "b": "m%d" % i}, "c", negatives,
            "good-%d" % i))
    return RuleSet(SCHEMA, rules)


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_enumeration_blowup_with_negative_width(benchmark):
    widths = [1, 2, 4, 8, 16]
    char_times, enum_times = [], []
    for width in widths:
        rules = _rules_with_negative_width(width)
        char_times.append(_time_once(
            lambda: is_consistent_characterize(rules)))
        enum_times.append(_time_once(
            lambda: is_consistent_enumerate(rules)))
    print()
    print(format_series(
        "Ablation: check time (s) vs negative-pattern width, 24 rules",
        "width", widths,
        {"isConsist_r": char_times, "isConsist_t": enum_times}))
    # Characterization is insensitive to width; enumeration blows up.
    assert enum_times[-1] > enum_times[0] * 4
    assert enum_times[-1] > char_times[-1] * 10
    benchmark.pedantic(is_consistent_characterize,
                       args=(_rules_with_negative_width(16),), rounds=5,
                       iterations=1)
