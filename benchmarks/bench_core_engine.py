"""Core engine benchmark: compiled serial hot path + blocked isConsist.

Standalone script (not a pytest benchmark — run it directly):

    PYTHONPATH=src python benchmarks/bench_core_engine.py

Two measurements, mirroring the two halves of the engine PR:

1. **Serial repair throughput** — ``repair_table(workers=None)`` on the
   noisy-HOSP protocol (Section 7: generate clean, inject noise, mine
   seed rules).  Before the compiled engine this path ran the Row-level
   ``fast_repair`` at ~5,679 rows/s (see ``BENCH_parallel.json``, PR 2);
   it now runs :class:`repro.core.engine.CompiledRuleSet` directly over
   raw cell lists.  The script **exits nonzero** if throughput falls
   below the pre-engine baseline, and at full scale also enforces the
   5x acceptance target.

2. **Columnar bulk throughput** — the same workload through
   ``repair_table(backend="columnar")``: dictionary-encoded columns,
   code-space candidate scans, row engine only on the rows that
   actually change.  Output and provenance must be identical to the
   row leg; at full scale throughput must be >= 3x the row engine's
   92K rows/s (the columnar acceptance gate, pointed at 1M rows/s).

3. **Consistency checking** — blocked vs exhaustive-pairwise
   ``find_conflicts`` on the mined Σ (|Σ|=2,000 at full scale; ~2M rule
   pairs).  Conflict output must be identical; at full scale the
   blocked strategy must be >= 10x faster.

Results land in ``BENCH_core.json`` at the repo root, including the
engine counters (pairs examined/pruned) so the pruning ratio is
auditable.  ``--smoke`` runs a tiny configuration (< 2 s) for CI; smoke
runs still enforce output identity and the "no slower than baseline"
floor scaled away (gates needing statistical weight are full-scale
only) and write ``"smoke": true`` so readers don't mistake the numbers
for the real benchmark.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from pathlib import Path

from repro.core import (RuleSet, engine_stats, find_conflicts,
                        numpy_available, repair_table, reset_engine_stats)
from repro.datagen import (constraint_attributes, generate_hosp, hosp_fds,
                           inject_noise)
from repro.rulegen.seeds import generate_seed_rules

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

ROWS = 50_000
RULE_CAP = 2_000
NOISE_RATE = 0.08
SEED = 7
ROUNDS = 3              # best-of, serial timing has little variance

#: rows/s of the pre-engine serial path (BENCH_parallel.json, PR 2).
PRE_ENGINE_BASELINE = 5_679.1
#: acceptance target: compiled serial path at >= 5x the old baseline.
TARGET_SPEEDUP = 5.0
#: acceptance target: blocked isConsist >= 10x faster than pairwise.
TARGET_CONSISTENCY_SPEEDUP = 10.0
#: rows/s of the compiled row engine when the columnar backend landed
#: (BENCH_core.json, PR 5).  The columnar acceptance gate is relative
#: to this number, not to whatever the row leg measures today, so a
#: slow box fails both legs instead of hiding a columnar regression.
ROW_ENGINE_BASELINE = 92_097.6
#: acceptance target: columnar bulk path >= 3x the row engine.
TARGET_COLUMNAR_SPEEDUP = 3.0

SMOKE_ROWS = 800
SMOKE_RULE_CAP = 150


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def build_workload(rows: int, rule_cap: int, seed: int = SEED):
    clean = generate_hosp(rows=rows, seed=seed)
    noise = inject_noise(clean, constraint_attributes(hosp_fds()),
                         noise_rate=NOISE_RATE, typo_ratio=0.5, seed=seed)
    mined = generate_seed_rules(clean, noise.table, hosp_fds())
    rules = RuleSet(clean.schema, mined.rules()[:rule_cap])
    return noise.table, rules


def best_of(fn, rounds: int = ROUNDS):
    best = result = None
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best, result


def conflict_keys(conflicts):
    return [(c.rule_a.name, c.rule_b.name, c.kind) for c in conflicts]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--rules", type=int, default=None)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (< 2 s)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    rows = args.rows if args.rows is not None else \
        (SMOKE_ROWS if args.smoke else ROWS)
    rule_cap = args.rules if args.rules is not None else \
        (SMOKE_RULE_CAP if args.smoke else RULE_CAP)
    full_scale = rows >= ROWS and rule_cap >= RULE_CAP

    print("generating %d-row HOSP workload (%d-rule cap)..."
          % (rows, rule_cap), flush=True)
    table, rules = build_workload(rows=rows, rule_cap=rule_cap)
    print("  %d rows, %d rules, %d cpus (%d usable)"
          % (len(table), len(rules), os.cpu_count() or 1, usable_cpus()),
          flush=True)

    failures = []

    # -- 1. serial repair throughput -------------------------------------
    # backend="row" pins the per-row compiled engine: at this scale the
    # auto policy would route to the columnar backend and this leg
    # would silently measure the wrong engine.
    reset_engine_stats()
    serial_seconds, report = best_of(
        lambda: repair_table(table, rules, workers=None, backend="row"))
    serial_rate = len(table) / serial_seconds
    speedup_vs_baseline = serial_rate / PRE_ENGINE_BASELINE
    print("serial repair_table: %7.3fs  %9.0f rows/s  (%.2fx the "
          "pre-engine %0.0f rows/s; %d fixes)"
          % (serial_seconds, serial_rate, speedup_vs_baseline,
             PRE_ENGINE_BASELINE, report.total_applications), flush=True)

    if full_scale:
        if serial_rate < PRE_ENGINE_BASELINE:
            failures.append(
                "serial throughput %.0f rows/s is below the pre-engine "
                "baseline %.0f rows/s" % (serial_rate, PRE_ENGINE_BASELINE))
        if speedup_vs_baseline < TARGET_SPEEDUP:
            failures.append(
                "serial speedup %.2fx is below the %.0fx acceptance "
                "target" % (speedup_vs_baseline, TARGET_SPEEDUP))

    # -- 2. columnar bulk throughput -------------------------------------
    columnar_seconds, columnar_report = best_of(
        lambda: repair_table(table, rules, workers=None,
                             backend="columnar"))
    columnar_rate = len(table) / columnar_seconds
    columnar_speedup = columnar_rate / ROW_ENGINE_BASELINE
    print("columnar repair_table: %5.3fs  %9.0f rows/s  (%.2fx the row "
          "engine's %0.0f rows/s; numpy=%s)"
          % (columnar_seconds, columnar_rate, columnar_speedup,
             ROW_ENGINE_BASELINE, numpy_available()), flush=True)
    if [row.values for row in columnar_report.table] != \
            [row.values for row in report.table]:
        failures.append("columnar backend output diverged from the row "
                        "engine")
    if columnar_report.applications_by_rule() != \
            report.applications_by_rule():
        failures.append("columnar backend provenance diverged from the "
                        "row engine")
    if full_scale and columnar_speedup < TARGET_COLUMNAR_SPEEDUP:
        failures.append(
            "columnar throughput %.0f rows/s is %.2fx the row-engine "
            "baseline, below the %.0fx acceptance target"
            % (columnar_rate, columnar_speedup, TARGET_COLUMNAR_SPEEDUP))

    # -- 3. blocked vs pairwise consistency checking ---------------------
    rule_list = rules.rules()
    # counters from exactly one run (best_of would accumulate them)
    reset_engine_stats()
    find_conflicts(rule_list, strategy="blocked")
    blocked_stats = engine_stats()
    blocked_seconds, blocked_conflicts = best_of(
        lambda: find_conflicts(rule_list, strategy="blocked"))

    reset_engine_stats()
    pairwise_seconds, pairwise_conflicts = best_of(
        lambda: find_conflicts(rule_list, strategy="pairwise"))

    if conflict_keys(blocked_conflicts) != conflict_keys(pairwise_conflicts):
        failures.append("blocked and pairwise conflict lists differ")
    consistency_speedup = pairwise_seconds / blocked_seconds \
        if blocked_seconds else float("inf")
    total_pairs = len(rule_list) * (len(rule_list) - 1) // 2
    print("isConsist pairwise : %7.3fs  (%d pairs)"
          % (pairwise_seconds, total_pairs), flush=True)
    print("isConsist blocked  : %7.3fs  (%d examined, %d pruned, %.1fx)"
          % (blocked_seconds, blocked_stats["pairs_examined"],
             blocked_stats["pairs_pruned"], consistency_speedup),
          flush=True)

    if full_scale and consistency_speedup < TARGET_CONSISTENCY_SPEEDUP:
        failures.append(
            "blocked consistency speedup %.1fx is below the %.0fx "
            "acceptance target"
            % (consistency_speedup, TARGET_CONSISTENCY_SPEEDUP))

    payload = {
        "benchmark": "core_engine",
        "dataset": "hosp",
        "smoke": bool(args.smoke),
        "rows": len(table),
        "rules": len(rules),
        "noise_rate": NOISE_RATE,
        # both counts: cpu_count is the machine, cpus_usable is what the
        # scheduler actually grants this process (containers differ)
        "cpu_count": os.cpu_count() or 1,
        "cpus_usable": usable_cpus(),
        "serial": {
            "seconds": round(serial_seconds, 4),
            "rows_per_sec": round(serial_rate, 1),
            "pre_engine_rows_per_sec": PRE_ENGINE_BASELINE,
            "speedup_vs_pre_engine": round(speedup_vs_baseline, 2),
            "total_applications": report.total_applications,
        },
        "columnar": {
            "seconds": round(columnar_seconds, 4),
            "rows_per_sec": round(columnar_rate, 1),
            "row_engine_rows_per_sec": ROW_ENGINE_BASELINE,
            "speedup_vs_row_engine": round(columnar_speedup, 2),
            "target_speedup": TARGET_COLUMNAR_SPEEDUP,
            "numpy": numpy_available(),
            "total_applications": columnar_report.total_applications,
        },
        "consistency": {
            "total_pairs": total_pairs,
            "pairs_examined": blocked_stats["pairs_examined"],
            "pairs_pruned": blocked_stats["pairs_pruned"],
            "conflicts": len(pairwise_conflicts),
            "pairwise_seconds": round(pairwise_seconds, 4),
            "blocked_seconds": round(blocked_seconds, 4),
            "speedup": round(consistency_speedup, 1),
        },
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print("wrote %s" % args.output, flush=True)

    for failure in failures:
        print("FAIL: %s" % failure, flush=True)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
