"""Shared fixtures for the benchmark suite.

Scale note: the paper runs on 115K (hosp) / 15K (uis) rows with C++
(rules) and Java (baselines) implementations.  The benchmarks here use
2000 / 1000 rows so the whole suite regenerates every figure in a few
minutes of pure Python; the claims under test are *shapes* (who wins,
how curves move with the x-axis), which are scale-invariant for these
algorithms.  EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import pytest

from repro.evaluation import build_workload, prepare

HOSP_ROWS = 2000
UIS_ROWS = 1000
NOISE_RATE = 0.10


@pytest.fixture(scope="session")
def hosp_workload():
    return build_workload("hosp", rows=HOSP_ROWS, seed=7)


@pytest.fixture(scope="session")
def uis_workload():
    return build_workload("uis", rows=UIS_ROWS, seed=7)


@pytest.fixture(scope="session")
def hosp_bundle(hosp_workload):
    """hosp with 10% noise, half typos, enriched full rule set."""
    return prepare(hosp_workload, noise_rate=NOISE_RATE, typo_ratio=0.5,
                   enrichment_per_rule=3)


@pytest.fixture(scope="session")
def uis_bundle(uis_workload):
    """uis with 10% noise, half typos, enriched full rule set."""
    return prepare(uis_workload, noise_rate=NOISE_RATE, typo_ratio=0.5,
                   enrichment_per_rule=3)
