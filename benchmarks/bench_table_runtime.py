"""Exp-3 runtime table: lRepair vs Heu vs Csm wall-clock time.

The paper's unnumbered table reports lRepair far faster than both
baselines on hosp and uis, because (1) fixing rules detect errors per
tuple while FD repair reasons over tuple *pairs*, and (2) lRepair is
linear per tuple while the baselines iterate over global violation
structures.
"""

from __future__ import annotations

import pytest

from repro.evaluation import format_series
from repro.evaluation.figures import runtime_table as _collect


def test_runtime_table(hosp_bundle, uis_bundle, benchmark):
    hosp_times = _collect(hosp_bundle)
    uis_times = _collect(uis_bundle)
    print()
    print(format_series(
        "Exp-3 runtime table: wall time (s) per method",
        "dataset", ["hosp", "uis"],
        {"lRepair": [hosp_times["Fix"], uis_times["Fix"]],
         "Heu": [hosp_times["Heu"], uis_times["Heu"]],
         "Csm": [hosp_times["Csm"], uis_times["Csm"]]}))
    # lRepair runs much faster than the others on both datasets.
    assert hosp_times["Fix"] < hosp_times["Heu"]
    assert hosp_times["Fix"] < hosp_times["Csm"]
    assert uis_times["Fix"] < uis_times["Heu"]
    assert uis_times["Fix"] < uis_times["Csm"]
    from repro.core import repair_table
    benchmark.pedantic(repair_table,
                       args=(hosp_bundle.dirty, hosp_bundle.rules),
                       kwargs={"algorithm": "fast"}, rounds=3,
                       iterations=1)
