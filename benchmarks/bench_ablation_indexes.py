"""Ablation: what the Fig. 7 data structures buy.

Three variants of per-tuple repair over the same Σ and data:

* ``chase``      — no indexes at all (cRepair);
* ``fast-naive`` — lRepair logic but the InvertedIndex rebuilt for
  every tuple (amortization removed);
* ``fast``       — lRepair with the index built once (the paper's
  design).

Expected: fast < chase, and fast-naive ruins the win — demonstrating
that the speedup comes from amortizing the index, not merely from the
counter bookkeeping.
"""

from __future__ import annotations

import time

import pytest

from repro.core import HashCounters, InvertedIndex, fast_repair
from repro.core.repair import repair_table
from repro.evaluation import format_series


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _fast_naive(table, rules):
    """lRepair with the index rebuilt per tuple."""
    rule_list = rules.rules()
    for row in table:
        index = InvertedIndex(rule_list)
        fast_repair(row, rule_list, index=index,
                    counters=HashCounters(index))


def test_index_amortization(hosp_bundle, benchmark):
    rules = hosp_bundle.rules.subset(500)
    # Repair a slice so the naive variant stays affordable.
    sample = hosp_bundle.dirty.head(300)
    chase = _time_once(
        lambda: repair_table(sample, rules, algorithm="chase"))
    fast = _time_once(
        lambda: repair_table(sample, rules, algorithm="fast"))
    naive = _time_once(lambda: _fast_naive(sample, rules))
    print()
    print(format_series(
        "Ablation: lRepair index variants, 300 hosp tuples, |Sigma|=500",
        "variant", ["chase", "fast-naive", "fast"],
        {"seconds": [chase, naive, fast]}))
    assert fast < chase, "indexes must beat the plain chase"
    assert fast < naive, "the win must come from amortizing the index"
    benchmark.pedantic(repair_table, args=(sample, rules),
                       kwargs={"algorithm": "fast"}, rounds=3,
                       iterations=1)
