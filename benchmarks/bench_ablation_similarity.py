"""Ablation: similarity enrichment on unseen batches.

Fixing rules enumerate known-wrong values; fresh typos in a NEW batch
of data are, by definition, not enumerated — the structural recall
ceiling of the formalism (visible in Fig. 10).  This bench quantifies
how much of that ceiling the similarity enrichment
(`repro.rulegen.similarity`) removes, sweeping the edit-distance
radius: rules are generated against batch A, then evaluated on batch B
with and without typo enrichment computed from B.
"""

from __future__ import annotations

import pytest

from repro.core import repair_table
from repro.datagen import constraint_attributes, inject_noise
from repro.evaluation import evaluate_repair, format_series
from repro.rulegen import enrich_with_typo_negatives, generate_rules


def test_unseen_batch_recall(hosp_workload, benchmark):
    attrs = constraint_attributes(hosp_workload.fds)
    batch_a = inject_noise(hosp_workload.clean, attrs, noise_rate=0.10,
                           typo_ratio=1.0, seed=51)
    batch_b = inject_noise(hosp_workload.clean, attrs, noise_rate=0.10,
                           typo_ratio=1.0, seed=52)
    rules = generate_rules(hosp_workload.clean, batch_a.table,
                           hosp_workload.fds)

    radii = [0, 1, 2, 3]
    precision, recall = [], []
    for radius in radii:
        if radius == 0:
            variant = rules
        else:
            variant = enrich_with_typo_negatives(
                rules, batch_b.table, max_distance=radius,
                min_frequency=3)
        quality = evaluate_repair(
            hosp_workload.clean, batch_b.table,
            repair_table(batch_b.table, variant).table)
        precision.append(quality.precision)
        recall.append(quality.recall)
    print()
    print(format_series(
        "Ablation: unseen-batch accuracy vs typo-enrichment radius "
        "(0 = plain rules)",
        "edit radius", radii,
        {"precision": precision, "recall": recall}))
    # Plain rules barely touch fresh typos; radius 2 recovers most of
    # the recall at (near-)unchanged precision.
    assert recall[0] < 0.1
    assert recall[2] > recall[0] + 0.3
    assert min(precision) > 0.95
    benchmark.pedantic(
        enrich_with_typo_negatives,
        args=(rules, batch_b.table),
        kwargs={"max_distance": 2, "min_frequency": 3},
        rounds=3, iterations=1)
