"""Ablation: incremental vs full consistency checking.

The Section 5.1 workflow edits Σ one rule at a time.  Re-checking all
pairs after each edit costs O(|Σ|²) per edit; the pairwise property
(Proposition 3) allows O(|Σ|) per added rule.  This bench builds a
rule set of size N both ways and shows the quadratic-vs-linear gap in
total time.
"""

from __future__ import annotations

import time

import pytest

from repro.core import ConsistentRuleSet, RuleSet, is_consistent
from repro.evaluation import format_series


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _build_full_recheck(schema, rules):
    """Naive workflow: re-run the full pairwise check after each add."""
    working = RuleSet(schema)
    for rule in rules:
        working.add(rule)
        assert is_consistent(working)


def _build_incremental(schema, rules):
    crs = ConsistentRuleSet(schema)
    rejected = crs.extend(rules)
    assert not rejected  # the input set is consistent


def test_incremental_vs_full(hosp_bundle, benchmark):
    schema = hosp_bundle.rules.schema
    sizes = [100, 200, 400]  # full-recheck at 800 alone costs ~80 s
    full_times, incremental_times = [], []
    for size in sizes:
        rules = hosp_bundle.rules.subset(size).rules()
        full_times.append(_time_once(
            lambda: _build_full_recheck(schema, rules)))
        incremental_times.append(_time_once(
            lambda: _build_incremental(schema, rules)))
    print()
    print(format_series(
        "Ablation: build-a-ruleset time (s), re-check per edit vs "
        "incremental", "N rules", sizes,
        {"full-recheck": full_times,
         "incremental": incremental_times}))
    # Incremental wins outright at scale, and its advantage grows much
    # faster than linearly (cubic vs quadratic totals).
    assert incremental_times[-1] < full_times[-1] / 5
    ratio_full = full_times[-1] / full_times[0]
    ratio_incr = incremental_times[-1] / incremental_times[0]
    assert ratio_incr < ratio_full
    rules_400 = hosp_bundle.rules.subset(400).rules()
    benchmark.pedantic(_build_incremental, args=(schema, rules_400),
                       rounds=3, iterations=1)
