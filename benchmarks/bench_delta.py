"""Incremental delta-repair vs full re-repair: the sub-linear claim.

Standalone script (not a pytest benchmark — run it directly):

    PYTHONPATH=src python benchmarks/bench_delta.py

Generates the same noisy HOSP workload as ``bench_parallel_scaling``
(Section 7 protocol, seeded), loads it into a
:class:`~repro.core.delta.DeltaRepairSession`, then measures three
things:

* **row delta** — upserting 1%% of the rows through ``apply_rows``
  against a from-scratch columnar re-repair of the same final table.
  The acceptance gate: the incremental path must win by >= 10x (a 1%%
  delta touches 1%% of the chase work; index maintenance and the
  correction log are the only overhead);
* **Σ delta** — retracting one frequently-applied rule and re-adding
  it through ``apply_rules``, against full re-repairs under each Σ;
* **equivalence** — after every timed leg the session must equal the
  full repair cell for cell (the differential property, enforced here
  too so the speedup is never bought with wrong answers).

Results land in ``BENCH_delta.json`` at the repo root.  ``--smoke``
shrinks the workload and disables the gate so CI can exercise the
harness in seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import tempfile
import time
from pathlib import Path

from repro.core import DeltaRepairSession, audit_correction_log, repair_table

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_delta.json"

ROWS = 50_000
DELTA_FRACTION = 0.01
SEED = 7
ROUNDS = 3              # best-of for the sub-second incremental legs
SPEEDUP_GATE = 10.0


def build_workload(rows: int, seed: int = SEED):
    from bench_parallel_scaling import build_workload as build
    return build(rows=rows, seed=seed)


def full_columnar_seconds(table, rules, rounds: int = 1):
    """From-scratch columnar repair of *table*; returns (best s, cells)."""
    import gc
    best = None
    report = None
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        report = repair_table(table, rules, workers=1, backend="columnar")
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best, [list(row.values) for row in report.table]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="2K rows, no speedup gate — harness check "
                             "for CI")
    args = parser.parse_args(argv)

    rows = args.rows or (2_000 if args.smoke else ROWS)
    rng = random.Random(SEED)

    print("generating %d-row HOSP workload..." % rows, flush=True)
    table, rules = build_workload(rows=rows)
    print("  %d rows, %d rules" % (len(table), len(rules)), flush=True)

    log_dir = tempfile.mkdtemp(prefix="bench-delta-")
    log_path = os.path.join(log_dir, "corrections.jsonl")

    start = time.perf_counter()
    session = DeltaRepairSession.from_table(table, rules,
                                            log_path=log_path,
                                            check_consistency=False)
    base_seconds = time.perf_counter() - start
    base_report = session.generate_audit_report()
    print("base load : %7.2fs  (%d rows, %d changed)"
          % (base_seconds, base_report["rows"],
             base_report["rows_changed"]), flush=True)

    # -- row-delta leg: 1% of rows upserted with other rows' values --------
    n_delta = max(1, int(len(table) * DELTA_FRACTION))
    victims = rng.sample(range(len(table)), n_delta)
    upserts = [(str(i), list(table[rng.randrange(len(table))].values))
               for i in victims]

    import gc
    delta_seconds = None
    for round_no in range(ROUNDS):
        gc.collect()
        start = time.perf_counter()
        outcome = session.apply_rows(upserts=upserts)
        seconds = time.perf_counter() - start
        delta_seconds = (seconds if delta_seconds is None
                         else min(delta_seconds, seconds))
        assert len(outcome.affected) == n_delta

    full_seconds, full_cells = full_columnar_seconds(
        session.originals_table(), rules)
    if [values for _rid, values in session.items()] != full_cells:
        raise SystemExit("row-delta leg diverged from full re-repair")
    row_speedup = full_seconds / delta_seconds
    print("row delta : %7.4fs vs %7.2fs full  (%.1fx, %d rows)"
          % (delta_seconds, full_seconds, row_speedup, n_delta),
          flush=True)

    # -- Σ-delta leg: retract the most-applied rule, then re-add it --------
    by_rule = session.generate_audit_report()["applications_by_rule"]
    sigma_leg = None
    if by_rule:
        hot_name = next(iter(by_rule))
        hot_rule = session.rules().by_name(hot_name)

        start = time.perf_counter()
        removal = session.apply_rules(removed=[hot_rule])
        remove_seconds = time.perf_counter() - start
        full_removed_seconds, cells_removed = full_columnar_seconds(
            session.originals_table(), session.rules())
        if [values for _rid, values in session.items()] != cells_removed:
            raise SystemExit("Σ-removal leg diverged from full re-repair")

        start = time.perf_counter()
        addition = session.apply_rules(added=[hot_rule])
        add_seconds = time.perf_counter() - start
        full_added_seconds, cells_added = full_columnar_seconds(
            session.originals_table(), session.rules())
        if [values for _rid, values in session.items()] != cells_added:
            raise SystemExit("Σ-addition leg diverged from full re-repair")

        sigma_leg = {
            "rule": hot_name,
            "rows_applied": by_rule[hot_name],
            "remove": {"seconds": round(remove_seconds, 4),
                       "affected": len(removal.affected),
                       "full_seconds": round(full_removed_seconds, 4),
                       "speedup": round(full_removed_seconds
                                        / remove_seconds, 2)},
            "add": {"seconds": round(add_seconds, 4),
                    "affected": len(addition.affected),
                    "full_seconds": round(full_added_seconds, 4),
                    "speedup": round(full_added_seconds / add_seconds, 2)},
        }
        print("Σ remove  : %7.4fs vs %7.2fs full  (%.1fx, %d rows)"
              % (remove_seconds, full_removed_seconds,
                 sigma_leg["remove"]["speedup"],
                 len(removal.affected)), flush=True)
        print("Σ add     : %7.4fs vs %7.2fs full  (%.1fx, %d rows)"
              % (add_seconds, full_added_seconds,
                 sigma_leg["add"]["speedup"],
                 len(addition.affected)), flush=True)

    # -- the log must replay and audit clean -------------------------------
    session.log.flush()
    audit = audit_correction_log(log_path)
    if not audit["ok"]:
        raise SystemExit("correction log failed audit: %d mismatches"
                         % audit["mismatch_count"])
    session.close()

    payload = {
        "benchmark": "delta_repair",
        "dataset": "hosp",
        "rows": len(table),
        "rules": len(rules),
        "smoke": bool(args.smoke),
        "base_load_seconds": round(base_seconds, 4),
        "row_delta": {
            "rows": n_delta,
            "fraction": DELTA_FRACTION,
            "seconds": round(delta_seconds, 4),
            "full_seconds": round(full_seconds, 4),
            "speedup": round(row_speedup, 2),
            "gate": None if args.smoke else SPEEDUP_GATE,
        },
        "sigma_delta": sigma_leg,
        "log_records": audit["ops"],
        "equivalence_verified": True,
    }
    args.output.write_text(json.dumps(payload, indent=2,
                                      ensure_ascii=False) + "\n",
                           encoding="utf-8")
    print("wrote %s" % args.output, flush=True)

    if not args.smoke and row_speedup < SPEEDUP_GATE:
        print("FAIL: row-delta speedup %.1fx < %.1fx gate"
              % (row_speedup, SPEEDUP_GATE))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
