"""Weighted rule discovery at scale: throughput + dependability gates.

Standalone script (not a pytest benchmark — run it directly):

    PYTHONPATH=src python benchmarks/bench_discovery.py

Generates the standard noisy HOSP workload (Section 7 protocol: 10%
cell noise on the constraint attributes, half typos half active-domain
swaps, seed 7) at 500K rows, then measures the full discovery
pipeline **from dirty data alone** — ground truth is used only for
scoring:

* **discovery throughput** — rows/s through
  ``mine_candidates`` + ``resolve_by_weight`` (one
  :class:`~repro.discovery.DiscoverySession` pass);
* **consistency** — the resolved Σ must pass the blocked conflict
  scan: weighted resolution has to leave nothing for the engine's
  pre-check to reject;
* **dependability** — the discovered Σ repairs the dirty table
  through the ordinary columnar engine, and the result is scored
  against ground truth.  Acceptance gates (full scale only):
  precision >= 0.95 and recall >= 0.60.

Results land in ``BENCH_discovery.json`` at the repo root.
``--smoke`` shrinks the workload and disables the gates so CI can
exercise the harness in seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core import repair_table
from repro.core.consistency import find_conflicts
from repro.datagen import (constraint_attributes, generate_hosp,
                           generate_uis, hosp_fds, inject_noise, uis_fds)
from repro.discovery import DiscoverySession
from repro.evaluation import evaluate_repair

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_discovery.json"

ROWS = 500_000
NOISE_RATE = 0.10
TYPO_RATIO = 0.5
SEED = 7
#: Group-majority threshold for the standard workload.  10% cell noise
#: plus key-attribute swaps leaves ~25% of a dirty-keyed group off the
#: majority value, so the library default (0.8) is too strict here —
#: see docs/discovery.md for the derivation.
MIN_CONFIDENCE = 0.7
PRECISION_GATE = 0.95
RECALL_GATE = 0.60


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def build_workload(dataset: str, rows: int, seed: int = SEED):
    if dataset == "hosp":
        clean = generate_hosp(rows=rows, seed=seed)
        fds = hosp_fds()
    else:
        clean = generate_uis(rows=rows, seed=seed)
        fds = uis_fds()
    noise = inject_noise(clean, constraint_attributes(fds),
                         noise_rate=NOISE_RATE, typo_ratio=TYPO_RATIO,
                         seed=seed)
    return clean, noise.table, fds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", choices=["hosp", "uis"],
                        default="hosp")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--min-confidence", type=float,
                        default=MIN_CONFIDENCE)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="5K rows, no accuracy gates — harness "
                             "check for CI")
    args = parser.parse_args(argv)

    rows = args.rows or (5_000 if args.smoke else ROWS)
    gated = not args.smoke

    print("generating %d-row %s workload (noise %.0f%%, typo %.1f, "
          "seed %d)..." % (rows, args.dataset, NOISE_RATE * 100,
                           TYPO_RATIO, SEED), flush=True)
    clean, dirty, fds = build_workload(args.dataset, rows)

    # -- discovery leg: dirty data in, weighted Σ out ----------------------
    session = DiscoverySession(dirty, fds=fds,
                               min_confidence=args.min_confidence)
    start = time.perf_counter()
    weighted = session.discover()
    discovery_seconds = time.perf_counter() - start
    throughput = rows / discovery_seconds
    report = session.report
    print("discovery : %7.2fs  (%.0f rows/s; %d candidates -> %d kept, "
          "%d dropped, %d revised, %d tie rounds)"
          % (discovery_seconds, throughput, report.candidates,
             len(weighted), len(weighted.dropped), len(weighted.revised),
             weighted.tie_rounds), flush=True)

    # -- consistency leg: resolution must leave nothing to reject ----------
    start = time.perf_counter()
    conflicts = find_conflicts(weighted.ruleset(), strategy="blocked")
    check_seconds = time.perf_counter() - start
    print("check     : %7.2fs  (%d conflict(s))"
          % (check_seconds, len(conflicts)), flush=True)
    if conflicts:
        print("FAIL: weighted resolution left %d conflict(s): %s"
              % (len(conflicts), conflicts[0].describe()))
        return 1

    # -- repair leg: the discovered Σ flows through the stock engine -------
    start = time.perf_counter()
    repaired = repair_table(dirty, weighted.ruleset(),
                            check_consistency=False,
                            backend="columnar").table
    repair_seconds = time.perf_counter() - start
    quality = evaluate_repair(clean, dirty, repaired)
    print("repair    : %7.2fs  (columnar; P %.4f R %.4f F1 %.4f)"
          % (repair_seconds, quality.precision, quality.recall,
             quality.f1), flush=True)

    payload = {
        "benchmark": "discovery",
        "dataset": args.dataset,
        "rows": rows,
        "noise_rate": NOISE_RATE,
        "typo_ratio": TYPO_RATIO,
        "seed": SEED,
        "min_confidence": args.min_confidence,
        "smoke": bool(args.smoke),
        "cpus_usable": usable_cpus(),
        "discovery": {
            "seconds": round(discovery_seconds, 4),
            "rows_per_second": round(throughput, 1),
            "fds": list(report.fds),
            "groups_scanned": report.groups_scanned,
            "candidates": report.candidates,
            "harvested_negatives": report.harvested_negatives,
            "vetoed_rows": report.vetoed_rows,
            "kept": len(weighted),
            "dropped": len(weighted.dropped),
            "revised": len(weighted.revised),
            "tie_rounds": weighted.tie_rounds,
        },
        "consistency": {
            "seconds": round(check_seconds, 4),
            "conflicts": len(conflicts),
        },
        "repair": {
            "seconds": round(repair_seconds, 4),
            "backend": "columnar",
            "precision": round(quality.precision, 4),
            "recall": round(quality.recall, 4),
            "f1": round(quality.f1, 4),
        },
        "gates": None if not gated else {
            "precision": PRECISION_GATE,
            "recall": RECALL_GATE,
        },
    }
    args.output.write_text(json.dumps(payload, indent=2,
                                      ensure_ascii=False) + "\n",
                           encoding="utf-8")
    print("wrote %s" % args.output, flush=True)

    if gated:
        failed = []
        if quality.precision < PRECISION_GATE:
            failed.append("precision %.4f < %.2f"
                          % (quality.precision, PRECISION_GATE))
        if quality.recall < RECALL_GATE:
            failed.append("recall %.4f < %.2f"
                          % (quality.recall, RECALL_GATE))
        if failed:
            print("FAIL: " + "; ".join(failed))
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
