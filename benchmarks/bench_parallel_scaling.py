"""Parallel repair scaling: rows/sec at 1, 2, 4, 8 workers.

Standalone script (not a pytest benchmark — run it directly):

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py

Generates a noisy HOSP table (Section 7 protocol), seeds fixing rules
from the clean/dirty pair, then times ``repair_table`` end to end —
the serial per-tuple lRepair loop as the baseline, the serial columnar
bulk engine, and the sharded executor at each worker count over both
transports (pickled row lists and dictionary-encoded shared-memory
buffers) wherever ``multiprocessing.shared_memory`` exists.  Results
land in ``BENCH_parallel.json`` at the repo root.

Reading the numbers honestly: the parallel path is faster even at one
process per core because its workers run the positional
``BatchRepairKernel`` (see docs/parallel.md), so on a single-CPU box
the speedup column measures kernel efficiency plus pool overhead; on a
multi-core box process sharding stacks on top of it.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core import (DEFAULT_COST_MODEL, RuleSet, repair_table,
                        reset_supervisor_stats, shm_available,
                        supervisor_stats)
from repro.datagen import (constraint_attributes, generate_hosp, hosp_fds,
                           inject_noise)
from repro.rulegen.seeds import generate_seed_rules

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_parallel.json"

ROWS = 50_000
RULE_CAP = 2_000        # full seed mining yields ~43K rules at this scale
NOISE_RATE = 0.08
SEED = 7
WORKER_COUNTS = (1, 2, 4, 8)
ROUNDS = 2              # best-of; fork/COW timing is noisy on shared cores


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def build_workload(rows: int = ROWS, seed: int = SEED):
    clean = generate_hosp(rows=rows, seed=seed)
    noise = inject_noise(clean, constraint_attributes(hosp_fds()),
                         noise_rate=NOISE_RATE, typo_ratio=0.5, seed=seed)
    mined = generate_seed_rules(clean, noise.table, hosp_fds())
    rules = RuleSet(clean.schema, mined.rules()[:RULE_CAP])
    return noise.table, rules


def time_repair(table, rules, workers: int, rounds: int = ROUNDS,
                backend: str = "auto"):
    import gc
    best = None
    report = None
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        # force_workers: this benchmark measures real pools by design;
        # the cost-model guard would turn the multi-worker legs into
        # serial reruns on a single-CPU box.
        report = repair_table(table, rules, workers=workers,
                              force_workers=True, backend=backend)
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=ROWS)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--baseline", type=Path, default=None,
                        help="a prior BENCH_parallel.json to compare "
                             "against: fails if rows/s at 4 workers "
                             "regressed by more than 5%% (the "
                             "supervision-overhead gate)")
    args = parser.parse_args(argv)

    reset_supervisor_stats()
    print("generating %d-row HOSP workload..." % args.rows, flush=True)
    table, rules = build_workload(rows=args.rows)
    print("  %d rows, %d rules, %d cpus (%d usable)" %
          (len(table), len(rules), os.cpu_count() or 1,
           usable_cpus()), flush=True)

    # backend="row" pins the per-row compiled engine as the historical
    # 1-worker baseline; the auto policy would route a table this size
    # to the columnar backend.
    serial_seconds, serial_report = time_repair(table, rules, workers=1,
                                                backend="row")
    serial_rate = len(table) / serial_seconds
    print("serial    : %7.2fs  %9.0f rows/s  (%d fixes)" %
          (serial_seconds, serial_rate, serial_report.total_applications),
          flush=True)

    trajectory = [{"workers": 1, "mode": "serial",
                   "seconds": round(serial_seconds, 4),
                   "rows_per_sec": round(serial_rate, 1),
                   "speedup": 1.0}]
    serial_cells = [row.values for row in serial_report.table]

    columnar_seconds, columnar_report = time_repair(table, rules,
                                                    workers=1,
                                                    backend="columnar")
    if [row.values for row in columnar_report.table] != serial_cells:
        raise SystemExit("columnar serial output diverged")
    columnar_rate = len(table) / columnar_seconds
    trajectory.append({"workers": 1, "mode": "columnar",
                       "seconds": round(columnar_seconds, 4),
                       "rows_per_sec": round(columnar_rate, 1),
                       "speedup": round(serial_seconds / columnar_seconds,
                                        2)})
    print("columnar  : %7.2fs  %9.0f rows/s  (%.2fx)" %
          (columnar_seconds, columnar_rate,
           serial_seconds / columnar_seconds), flush=True)

    #: transport the default (backend="auto") parallel path resolves to
    default_transport = "shm" if shm_available() else "pickle"
    # row backend ships chunks pickled; columnar ships them as
    # shared-memory flat buffers — benchmark both sides of the IPC
    # cost model wherever shared memory exists.
    transport_legs = [("pickle", "row")]
    if shm_available():
        transport_legs.append(("shm", "columnar"))
    cost_model_misses = []
    for workers in WORKER_COUNTS[1:]:
        for transport, backend in transport_legs:
            seconds, report = time_repair(table, rules, workers=workers,
                                          backend=backend)
            if [row.values for row in report.table] != serial_cells:
                raise SystemExit("parallel output diverged at workers=%d "
                                 "transport=%s" % (workers, transport))
            rate = len(table) / seconds
            # Cost-model accountability: record what the IPC model
            # promised for this leg next to what the leg measured.  A
            # ratio far from 1 means the model's constants have drifted
            # from this machine — the fork/serial decision it drives
            # may be wrong here.
            predicted = DEFAULT_COST_MODEL.predicted_speedup(
                len(table), workers, transport)
            actual = serial_seconds / seconds
            ratio = actual / predicted if predicted > 0 else float("inf")
            trajectory.append({"workers": workers, "mode": "parallel",
                               "transport": transport,
                               "seconds": round(seconds, 4),
                               "rows_per_sec": round(rate, 1),
                               "speedup": round(actual, 2),
                               "predicted_speedup": round(predicted, 2),
                               "actual_vs_predicted": round(ratio, 3)})
            if ratio > 2.0 or ratio < 0.5:
                miss = ("cost model miss at workers=%d transport=%s: "
                        "predicted %.2fx, measured %.2fx (%.2fx off)"
                        % (workers, transport, predicted, actual,
                           ratio if ratio >= 1 else 1 / ratio))
                cost_model_misses.append(miss)
                print("WARN: %s" % miss, flush=True)
            print("workers=%-2d: %7.2fs  %9.0f rows/s  (%.2fx, %s; "
                  "model said %.2fx)" %
                  (workers, seconds, rate, actual, transport, predicted),
                  flush=True)

    at4 = next(t for t in trajectory
               if t["workers"] == 4
               and t.get("transport", "pickle") == default_transport)
    # A healthy benchmark run must not trip the failure path at all:
    # every supervision counter staying zero *is* the near-free claim.
    supervision = supervisor_stats()
    payload = {
        "benchmark": "parallel_scaling",
        "dataset": "hosp",
        "rows": len(table),
        "rules": len(rules),
        "noise_rate": NOISE_RATE,
        # both counts: cpu_count is the machine, cpus_usable is what the
        # scheduler actually grants this process (containers differ)
        "cpu_count": os.cpu_count() or 1,
        "cpus_usable": usable_cpus(),
        "total_applications": serial_report.total_applications,
        "transport": default_transport,
        "trajectory": trajectory,
        "speedup_at_4_workers": at4["speedup"],
        "supervisor_stats": supervision,
        "cost_model": dict(DEFAULT_COST_MODEL._asdict()),
        "cost_model_misses": cost_model_misses,
    }

    failures = []
    failure_keys = [key for key, count in supervision.items()
                    if count and key != "chunks_submitted"]
    if failure_keys:
        failures.append("supervision failure path entered on a healthy "
                        "run: %s" % ", ".join(failure_keys))
    if args.baseline is not None:
        base = json.loads(args.baseline.read_text(encoding="utf-8"))
        base_legs = [t for t in base["trajectory"] if t["workers"] == 4]
        # match transports when the baseline recorded them; fall back
        # to the baseline's only/first leg for pre-columnar files
        base_at4 = next((t for t in base_legs
                         if t.get("transport", "pickle")
                         == at4.get("transport", "pickle")),
                        base_legs[0])
        ratio = at4["rows_per_sec"] / base_at4["rows_per_sec"]
        # The gate is only meaningful when this process can actually
        # run workers on distinct cores: on < 2 usable CPUs pool
        # timings measure scheduler contention, not our overhead, so
        # the comparison is recorded but the assertion is skipped.
        enforced = usable_cpus() >= 2
        payload["baseline_gate"] = {
            "baseline_rows_per_sec_at_4_workers": base_at4["rows_per_sec"],
            "throughput_vs_baseline_at_4_workers": round(ratio, 4),
            "cpus_usable": usable_cpus(),
            "enforced": enforced,
        }
        print("vs baseline at 4 workers: %.0f -> %.0f rows/s (%.1f%%)%s"
              % (base_at4["rows_per_sec"], at4["rows_per_sec"],
                 100.0 * ratio,
                 "" if enforced else
                 "  [gate skipped: < 2 usable cpus]"), flush=True)
        if enforced and ratio < 0.95:
            failures.append("supervision overhead: rows/s at 4 workers "
                            "is %.1f%% of baseline (< 95%%)"
                            % (100.0 * ratio))
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print("wrote %s" % args.output, flush=True)

    # The scaling gate needs real cores: on a 1-CPU box the serial
    # compiled engine beats any pool (workers only add IPC), so the
    # speedup column measures overhead there, not scaling.
    if (args.rows >= 50_000 and usable_cpus() >= 2
            and at4["speedup"] < 2.0):
        failures.append("speedup at 4 workers %.2fx < 2.0x"
                        % at4["speedup"])
    for failure in failures:
        print("FAIL: %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
