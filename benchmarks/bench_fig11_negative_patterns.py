"""Exp-2(c) / Fig. 11: the effect of negative patterns (hosp).

* (a) distribution of negative-pattern counts across rules — the paper
  finds most rules have few negatives (~80% have two);
* (b) accuracy as the *total* number of negative patterns grows —
  recall improves, precision stays high.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.evaluation import format_series, prepare
from repro.evaluation.figures import (negative_pattern_distribution,
                                      negatives_budget_series)
from repro.rulegen import negatives_budget_sweep


def test_fig11a_distribution(hosp_workload, benchmark):
    """Negative-pattern count distribution over the seed rules (no
    enrichment — the natural counts the paper sorts in Fig. 11(a))."""
    prep = prepare(hosp_workload, noise_rate=0.10, typo_ratio=0.5,
                   enrichment_per_rule=0)
    counts = negative_pattern_distribution(prep.rules)
    sizes = sorted(counts)
    print()
    print(format_series(
        "Fig 11(a) hosp: #rules per negative-pattern count",
        "#negatives", sizes, {"rules": [counts[s] for s in sizes]}))
    total = sum(counts.values())
    small = sum(counts[s] for s in sizes if s <= 2)
    # Paper: most rules carry very few negative patterns.
    assert small / total > 0.5
    benchmark.pedantic(negative_pattern_distribution, args=(prep.rules,),
                       rounds=5, iterations=1)


def test_fig11b_accuracy_vs_negatives(hosp_workload, benchmark):
    """Trim the enriched rule set to a total-negatives budget and
    re-measure accuracy at each budget."""
    prep = prepare(hosp_workload, noise_rate=0.10, typo_ratio=0.5,
                   enrichment_per_rule=4)
    budgets, precision, recall = negatives_budget_series(
        prep, fractions=(0.2, 0.4, 0.6, 0.8, 1.0))
    print()
    print(format_series(
        "Fig 11(b) hosp: accuracy vs total #negative patterns",
        "#negatives", budgets,
        {"precision": precision, "recall": recall}))
    # More negative patterns -> better recall, high precision kept.
    assert recall[-1] > recall[0]
    assert min(precision) > 0.8
    benchmark.pedantic(negatives_budget_sweep,
                       args=(prep.rules, budgets[2]), rounds=3,
                       iterations=1)
