"""Exp-1 / Fig. 9: efficiency of checking consistency.

Paper protocol: vary |Σ| (hosp: 100..1000; uis: 10..100) and time both
checkers — the worst case (all pairs scanned, Σ consistent) and 10
"real cases" where a seeded inconsistency lets the scan stop early.

Expected shape (Fig. 9): isConsist_t (tuple enumeration) is markedly
slower than isConsist_r (rule characterization) at every size, and both
grow quadratically in |Σ|.  isConsist_t is run on a truncated sweep —
its blow-up is the finding, and one Python point at |Σ|=300 already
costs ~15s.
"""

from __future__ import annotations

import pytest

from repro.core import is_consistent_characterize
from repro.evaluation import format_series
from repro.evaluation.figures import consistency_timing


def test_fig9a_hosp(hosp_bundle, benchmark):
    rules = hosp_bundle.rules
    assert len(rules) >= 1000, "hosp bundle must yield >= 1000 rules"
    r_sizes = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
    t_sizes = [100, 200, 300]  # truncated: the blow-up IS the result
    r_worst, r_real = consistency_timing(rules, r_sizes, "characterize")
    t_worst, t_real = consistency_timing(rules, t_sizes, "enumerate")
    pad = [float("nan")] * (len(r_sizes) - len(t_sizes))
    print()
    print(format_series(
        "Fig 9(a) hosp: consistency-check time (s) vs |Sigma|",
        "|Sigma|", r_sizes,
        {"isConsist_r(worst)": r_worst,
         "isConsist_r(real)": r_real,
         "isConsist_t(worst)": t_worst + pad,
         "isConsist_t(real)": t_real + pad}))
    # Shape assertions from the paper.
    assert t_worst[0] > r_worst[0]      # enumeration slower at 100
    assert t_worst[-1] > r_worst[2]     # and at 300
    assert r_worst[-1] > r_worst[0]     # quadratic growth visible
    benchmark.pedantic(is_consistent_characterize,
                       args=(rules.subset(500),), rounds=3, iterations=1)


def test_fig9b_uis(uis_bundle, benchmark):
    rules = uis_bundle.rules
    assert len(rules) >= 100, "uis bundle must yield >= 100 rules"
    sizes = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    r_worst, r_real = consistency_timing(rules, sizes, "characterize")
    t_worst, t_real = consistency_timing(rules, sizes, "enumerate")
    print()
    print(format_series(
        "Fig 9(b) uis: consistency-check time (s) vs |Sigma|",
        "|Sigma|", sizes,
        {"isConsist_r(worst)": r_worst,
         "isConsist_r(real)": r_real,
         "isConsist_t(worst)": t_worst,
         "isConsist_t(real)": t_real}))
    assert t_worst[-1] > r_worst[-1]
    benchmark.pedantic(is_consistent_characterize,
                       args=(rules.subset(100),), rounds=5, iterations=1)
